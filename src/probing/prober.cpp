#include "probing/prober.hpp"

#include <stdexcept>

namespace llm4vv::probing {

std::size_t ProbedSuite::count(IssueType issue) const noexcept {
  std::size_t n = 0;
  for (const auto& file : files) {
    if (file.issue == issue) ++n;
  }
  return n;
}

ProbedSuite probe_suite(const corpus::Suite& base,
                        const ProbingConfig& config) {
  std::size_t total = 0;
  for (const auto count : config.issue_counts) total += count;
  if (base.cases.size() < total) {
    throw std::invalid_argument(
        "probe_suite: base suite has " + std::to_string(base.cases.size()) +
        " files but the probing config needs " + std::to_string(total));
  }

  support::Rng rng(config.seed);

  // Shuffle the draw order ("split the test files in half randomly").
  std::vector<std::size_t> order(base.cases.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  ProbedSuite out;
  out.flavor = base.flavor;
  out.files.reserve(total);

  // Remaining need per issue; files are assigned round-robin through the
  // issue list so template families spread evenly across issues.
  std::array<std::size_t, 6> need = config.issue_counts;
  std::size_t next_file = 0;

  const auto draw_file = [&]() -> const corpus::TestCase& {
    if (next_file >= order.size()) {
      throw std::runtime_error(
          "probe_suite: ran out of files (too many inapplicable mutations)");
    }
    return base.cases[order[next_file++]];
  };

  for (int issue_id = 0; issue_id < 6; ++issue_id) {
    const IssueType issue = static_cast<IssueType>(issue_id);
    while (need[static_cast<std::size_t>(issue_id)] > 0) {
      const corpus::TestCase& source = draw_file();
      support::Rng file_rng = rng.fork();
      const auto mutated =
          apply_mutation(source.file.content, source.file.language, issue,
                         config.mutation, file_rng);
      if (!mutated.has_value()) continue;  // inapplicable: draw another file
      ProbedFile probed;
      probed.file = source.file;
      probed.file.content = *mutated;
      probed.issue = issue;
      probed.template_name =
          issue == IssueType::kReplacedWithPlainCode ? "" :
          source.template_name;
      if (issue == IssueType::kReplacedWithPlainCode) {
        // The replacement is plain C; keep the original name (the paper
        // replaced file *contents*, not names) but correct the language.
        probed.file.language = frontend::Language::kC;
      }
      out.files.push_back(std::move(probed));
      --need[static_cast<std::size_t>(issue_id)];
    }
  }

  // Interleave issues so batches seen by the pipeline are mixed, the way a
  // shuffled suite directory would be.
  rng.shuffle(out.files);
  return out;
}

ProbingConfig part_one_acc_config() {
  ProbingConfig config;
  config.issue_counts = {203, 125, 108, 117, 114, 668};
  config.mutation.issue4_function_tail_share = 0.15;
  config.seed = 0xACC1;
  return config;
}

ProbingConfig part_one_omp_config() {
  ProbingConfig config;
  config.issue_counts = {59, 39, 33, 51, 33, 216};
  config.mutation.issue4_function_tail_share = 0.80;
  config.seed = 0x0A3B1;
  return config;
}

ProbingConfig part_two_acc_config() {
  ProbingConfig config;
  config.issue_counts = {272, 146, 151, 146, 176, 891};
  config.mutation.issue4_function_tail_share = 0.15;
  config.seed = 0xACC2;
  return config;
}

ProbingConfig part_two_omp_config() {
  ProbingConfig config;
  config.issue_counts = {49, 28, 26, 20, 25, 148};
  config.mutation.issue4_function_tail_share = 0.80;
  config.seed = 0x0A3B2;
  return config;
}

}  // namespace llm4vv::probing
