#pragma once

#include <optional>
#include <string>

#include "frontend/source.hpp"
#include "support/rng.hpp"

namespace llm4vv::probing {

/// The paper's negative-probing issue taxonomy (Section III-A). IDs match
/// the paper's numbering; kNoIssue (5) marks unchanged files.
enum class IssueType {
  kRemovedAllocOrSwappedDirective = 0,
  kRemovedOpeningBracket = 1,
  kUndeclaredVariable = 2,
  kReplacedWithPlainCode = 3,
  kRemovedLastBracketedSection = 4,
  kNoIssue = 5,
};

/// Short names matching the paper's table rows.
const char* issue_name(IssueType issue) noexcept;

/// Long row labels as printed in Tables I/II/IV/V/VII/VIII.
std::string issue_row_label(IssueType issue, frontend::Flavor flavor);

/// Per-issue mutation knobs. The paper under-specifies its mutation scripts;
/// these parameters make our reading explicit and calibratable (DESIGN.md
/// §5, §8).
struct MutationConfig {
  /// Issue 0 splits into two arms: with probability `swap_directive_share`
  /// a directive keyword is misspelled (caught at compile time); otherwise
  /// an allocation statement is deleted (caught at run time).
  double swap_directive_share = 0.5;
  /// Issue 4: probability that the removed block is the *tail of the last
  /// function* (taking its return statement with it — the structure of
  /// SOLLVE-style OpenMP tests makes this the common case) rather than the
  /// last self-contained inner block (the OpenACC single-main structure).
  double issue4_function_tail_share = 0.15;
};

/// Apply `issue` to `source`. Returns std::nullopt when the mutation has no
/// applicable site (e.g. no allocation to remove) — callers then pick a
/// different file or issue. kNoIssue returns the source unchanged.
std::optional<std::string> apply_mutation(const std::string& source,
                                          frontend::Language language,
                                          IssueType issue,
                                          const MutationConfig& config,
                                          support::Rng& rng);

}  // namespace llm4vv::probing
