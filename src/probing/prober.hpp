#pragma once

#include <array>
#include <cstdint>

#include "corpus/testcase.hpp"
#include "probing/mutation.hpp"

namespace llm4vv::probing {

/// One file of a negative-probing benchmark with its ground truth.
struct ProbedFile {
  frontend::SourceFile file;  ///< content after (possible) mutation
  IssueType issue = IssueType::kNoIssue;
  std::string template_name;  ///< provenance (empty for issue-3 files)

  /// The paper's system-of-verification: issues 0-4 are invalid, 5 valid.
  bool ground_truth_valid() const noexcept {
    return issue == IssueType::kNoIssue;
  }
};

/// A probed benchmark suite.
struct ProbedSuite {
  frontend::Flavor flavor = frontend::Flavor::kOpenACC;
  std::vector<ProbedFile> files;

  std::size_t count(IssueType issue) const noexcept;
  std::size_t size() const noexcept { return files.size(); }
};

/// Probing parameters: how many files to produce per issue ID (index 0-5)
/// plus the mutation knobs.
struct ProbingConfig {
  std::array<std::size_t, 6> issue_counts = {0, 0, 0, 0, 0, 0};
  MutationConfig mutation;
  std::uint64_t seed = 0x9e6a71e5ULL;
};

/// Turn a suite of *valid* tests into a negative-probing benchmark matching
/// `config.issue_counts` exactly. The base suite must hold at least the
/// total count; files are drawn in shuffled order, mirroring the paper's
/// "split the manually-written test files randomly" protocol. If a mutation
/// has no applicable site in a drawn file, another file is drawn for it
/// (deterministically), so the requested counts always come out exact.
ProbedSuite probe_suite(const corpus::Suite& base,
                        const ProbingConfig& config);

/// Convenience: the paper's per-issue counts for each experiment.
ProbingConfig part_one_acc_config();   ///< Table I   (1335 files)
ProbingConfig part_one_omp_config();   ///< Table II  (431 files)
ProbingConfig part_two_acc_config();   ///< Tables IV/VII (1782 files)
ProbingConfig part_two_omp_config();   ///< Tables V/VIII (296 files)

}  // namespace llm4vv::probing
