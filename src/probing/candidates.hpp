#pragma once

#include <array>
#include <vector>

#include "corpus/generator.hpp"
#include "probing/mutation.hpp"

namespace llm4vv::probing {

/// Synthetic "LLM-generated candidate test" stream — the workload the
/// paper's validation pipeline exists for ("verifying LLM-generated codes
/// with a high occurrence of invalidity", Section III-C) and its future
/// work ("the automation of compiler test generation").
///
/// A candidate is a V&V test that is either clean or carries one defect
/// drawn from the negative-probing taxonomy; the defect rate and class mix
/// model how raw LLM generations actually fail (dominated by subtle
/// semantic slips and truncation rather than garbage).
struct CandidateConfig {
  frontend::Flavor flavor = frontend::Flavor::kOpenACC;
  std::size_t count = 100;
  std::uint64_t seed = 0xCAFEF00DULL;
  /// Share of candidates carrying a defect.
  double defect_rate = 0.5;
  /// Relative weights of defect classes (issue IDs 0-4) among defective
  /// candidates; normalized internally.
  std::array<double, 5> defect_weights = {0.30, 0.10, 0.20, 0.05, 0.35};
  MutationConfig mutation;
};

/// One candidate with its (hidden) ground truth.
struct Candidate {
  frontend::SourceFile file;
  bool truly_valid = true;
  IssueType defect = IssueType::kNoIssue;  ///< kNoIssue when clean
};

/// Generate a deterministic candidate stream.
std::vector<Candidate> generate_candidates(const CandidateConfig& config);

}  // namespace llm4vv::probing
