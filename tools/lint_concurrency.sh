#!/usr/bin/env bash
# Concurrency invariant lint (docs/STATIC_ANALYSIS.md).
#
# The repo's lock discipline is carried by the annotated wrappers in
# src/support/thread_annotations.hpp: Mutex/SharedMutex/CondVar instead of
# the raw std:: types, and every lock-protected member declared
# GUARDED_BY(its mutex). Clang's -Wthread-safety enforces the annotations
# themselves, but only where they exist -- a naked `std::mutex` member is
# invisible to the analysis, which is exactly the hole this lint closes.
#
# Rules (headers under src/ only; thread_annotations.hpp itself is the one
# legitimate home of the raw types):
#   1. No std::mutex / std::shared_mutex / std::condition_variable /
#      std::lock_guard / std::unique_lock / std::shared_lock /
#      std::scoped_lock outside the wrapper header. .cpp files may opt a
#      private type out of the analysis with a raw std::mutex, but must
#      say why next to it (see JudgeFuture::State in src/judge/judge.cpp).
#   2. Every header that declares a wrapper Mutex/SharedMutex member must
#      also declare at least one GUARDED_BY / REQUIRES / EXCLUDES /
#      ACQUIRE user -- a mutex nothing is annotated against guards
#      nothing the analysis can see.
#   3. No std::atomic members in src/obs/ headers outside cells.hpp. The
#      metrics registry's whole design is that hot-path writes go through
#      the sharded cell types (CounterCells/GaugeCell in obs/cells.hpp),
#      which own contention layout and scrape semantics; an ad-hoc atomic
#      counter member in another obs header bypasses the registry and
#      silently reintroduces the shared-cacheline hot spot the cells
#      exist to avoid.
#   4. No std::atomic members in src/serve/ headers. The serve layer's
#      shared state is all mutex-guarded behind the annotated wrappers
#      (TenantTable, FairScheduler, the server pimpl) so Clang's analysis
#      and the TSan leg see every access; an atomic member in a serve
#      header is state that escaped that discipline. Implementation files
#      may still use atomics with a rationale, same as rule 1's .cpp
#      escape hatch.
#
# Usage:
#   tools/lint_concurrency.sh              lint the tree (exit 1 on finding)
#   tools/lint_concurrency.sh --self-test  prove the lint still detects a
#                                          seeded violation of each rule
set -u

# LLM4VV_LINT_ROOT overrides the tree to lint (the self-test points it at
# a scratch tree seeded with violations); default is the repo root.
SCRIPT_DIR="$(cd "$(dirname "$0")" && pwd)"
cd "${LLM4VV_LINT_ROOT:-$SCRIPT_DIR/..}" || exit 2

ALLOWED_RAW_HEADER="src/support/thread_annotations.hpp"
ALLOWED_ATOMIC_OBS_HEADER="src/obs/cells.hpp"
RAW_TYPES='std::(mutex|shared_mutex|condition_variable(_any)?|lock_guard|unique_lock|shared_lock|scoped_lock)'
failures=0

# Strip // comments so prose mentioning the raw types (rationale comments,
# doc headers) never trips rule 1; string literals are rare enough in
# headers to not special-case.
strip_comments() {
  sed -e 's://.*$::' "$1"
}

lint_header_raw_types() {
  # Rule 1: raw standard concurrency types outside the wrapper header.
  local header="$1"
  [ "$header" = "$ALLOWED_RAW_HEADER" ] && return 0
  local hits
  hits=$(strip_comments "$header" | grep -nE "$RAW_TYPES")
  if [ -n "$hits" ]; then
    echo "LINT: $header declares raw standard concurrency types;" \
         "use the annotated wrappers from support/thread_annotations.hpp:"
    echo "$hits" | sed 's/^/    /'
    return 1
  fi
  return 0
}

lint_header_unguarded_mutex() {
  # Rule 2: a wrapper mutex member with no annotation anywhere in the
  # header means nothing is declared as protected by it.
  local header="$1"
  [ "$header" = "$ALLOWED_RAW_HEADER" ] && return 0
  local stripped
  stripped=$(strip_comments "$header")
  # Member declarations of the wrapper types ("Mutex name_;" with optional
  # mutable/support:: qualifiers), not parameters or locals.
  if ! echo "$stripped" | grep -qE '^\s*(mutable\s+)?(support::)?(Mutex|SharedMutex)\s+\w+\s*;'; then
    return 0
  fi
  if ! echo "$stripped" | grep -qE '\b(GUARDED_BY|PT_GUARDED_BY|REQUIRES|EXCLUDES|ACQUIRE|RELEASE)\s*\('; then
    echo "LINT: $header declares a Mutex/SharedMutex member but uses no" \
         "annotation macro (GUARDED_BY/REQUIRES/...); nothing is declared" \
         "as protected by that lock"
    return 1
  fi
  return 0
}

lint_obs_header_raw_atomics() {
  # Rule 3: std::atomic members in obs headers outside the cell types.
  local header="$1"
  case "$header" in
    src/obs/*.hpp) ;;
    *) return 0 ;;
  esac
  [ "$header" = "$ALLOWED_ATOMIC_OBS_HEADER" ] && return 0
  local hits
  hits=$(strip_comments "$header" | grep -nE 'std::atomic\s*<')
  if [ -n "$hits" ]; then
    echo "LINT: $header declares raw std::atomic members; obs hot-path" \
         "state must use the sharded cell types from obs/cells.hpp" \
         "(CounterCells/GaugeCell) so writes keep the registry's" \
         "contention layout and scrape semantics:"
    echo "$hits" | sed 's/^/    /'
    return 1
  fi
  return 0
}

lint_serve_header_raw_atomics() {
  # Rule 4: std::atomic members in serve headers; shared serve state must
  # live behind the annotated mutex wrappers.
  local header="$1"
  case "$header" in
    src/serve/*.hpp) ;;
    *) return 0 ;;
  esac
  local hits
  hits=$(strip_comments "$header" | grep -nE 'std::atomic\s*<')
  if [ -n "$hits" ]; then
    echo "LINT: $header declares raw std::atomic members; serve-layer" \
         "shared state must be mutex-guarded through the annotated" \
         "wrappers (support/thread_annotations.hpp) so the thread-safety" \
         "analysis and the TSan leg see every access:"
    echo "$hits" | sed 's/^/    /'
    return 1
  fi
  return 0
}

lint_tree() {
  local status=0
  local header
  while IFS= read -r header; do
    lint_header_raw_types "$header" || status=1
    lint_header_unguarded_mutex "$header" || status=1
    lint_obs_header_raw_atomics "$header" || status=1
    lint_serve_header_raw_atomics "$header" || status=1
  done < <(find src -name '*.hpp' | sort)
  return $status
}

self_test() {
  self_test_dir=$(mktemp -d) || exit 2
  trap 'rm -rf "$self_test_dir"' EXIT
  local dir="$self_test_dir"
  mkdir -p "$dir/src/bad" "$dir/src/obs" "$dir/src/serve"
  local status=0

  # Seed a rule-1 violation: a naked std::mutex member.
  cat > "$dir/src/bad/naked_mutex.hpp" <<'EOF'
#pragma once
#include <mutex>
class Naked {
 private:
  mutable std::mutex mutex_;
  int counter_ = 0;
};
EOF

  # Seed a rule-2 violation: a wrapper mutex with no annotated peers.
  cat > "$dir/src/bad/unguarded.hpp" <<'EOF'
#pragma once
#include "support/thread_annotations.hpp"
class Unguarded {
 private:
  mutable support::Mutex mutex_;
  int counter_ = 0;
};
EOF

  # Seed a rule-3 violation: an obs header hiding a raw atomic counter
  # that bypasses the registry's sharded cells.
  cat > "$dir/src/obs/rogue_counter.hpp" <<'EOF'
#pragma once
#include <atomic>
// A std::atomic in a comment alone must NOT trip the lint.
class RogueCounter {
 private:
  std::atomic<unsigned long> hits_{0};
};
EOF

  # Seed a rule-4 violation: lock-free state leaking into a serve header.
  cat > "$dir/src/serve/rogue_flag.hpp" <<'EOF'
#pragma once
#include <atomic>
// A std::atomic in a comment alone must NOT trip the lint.
class RogueFlag {
 private:
  std::atomic<bool> draining_{false};
};
EOF

  if LLM4VV_LINT_ROOT="$dir" "$SCRIPT_DIR/lint_concurrency.sh" \
      > /dev/null 2>&1; then
    echo "SELF-TEST FAIL: lint accepted a tree with seeded violations"
    status=1
  else
    echo "self-test: seeded violations detected (lint exits non-zero): OK"
  fi

  # Each rule must fire individually, not just the combination.
  if lint_header_raw_types "$dir/src/bad/naked_mutex.hpp" > /dev/null; then
    echo "SELF-TEST FAIL: rule 1 missed a naked std::mutex member"
    status=1
  else
    echo "self-test: rule 1 catches a naked std::mutex member: OK"
  fi
  if lint_header_unguarded_mutex "$dir/src/bad/unguarded.hpp" > /dev/null; then
    echo "SELF-TEST FAIL: rule 2 missed an unannotated Mutex member"
    status=1
  else
    echo "self-test: rule 2 catches an unannotated Mutex member: OK"
  fi
  if (cd "$dir" && lint_obs_header_raw_atomics "src/obs/rogue_counter.hpp" \
      > /dev/null); then
    echo "SELF-TEST FAIL: rule 3 missed a raw std::atomic obs member"
    status=1
  else
    echo "self-test: rule 3 catches a raw std::atomic member in obs: OK"
  fi
  # The sanctioned cell header itself must stay exempt.
  if ! lint_obs_header_raw_atomics "src/obs/cells.hpp" > /dev/null; then
    echo "SELF-TEST FAIL: rule 3 flagged the sanctioned obs/cells.hpp"
    status=1
  else
    echo "self-test: rule 3 exempts obs/cells.hpp: OK"
  fi

  if (cd "$dir" && lint_serve_header_raw_atomics "src/serve/rogue_flag.hpp" \
      > /dev/null); then
    echo "SELF-TEST FAIL: rule 4 missed a raw std::atomic serve member"
    status=1
  else
    echo "self-test: rule 4 catches a raw std::atomic member in serve: OK"
  fi

  # And the real tree must be clean, or the lint is vacuous red.
  if lint_tree; then
    echo "self-test: the checked-in tree lints clean: OK"
  else
    echo "SELF-TEST FAIL: the checked-in tree does not lint clean"
    status=1
  fi
  return $status
}

case "${1:-}" in
  --self-test)
    self_test
    exit $?
    ;;
  "")
    if lint_tree; then
      echo "lint_concurrency: clean"
      exit 0
    fi
    exit 1
    ;;
  *)
    echo "usage: $0 [--self-test]" >&2
    exit 2
    ;;
esac
