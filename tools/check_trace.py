#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by obs::write_chrome_trace.

The exporter (src/obs/export.cpp) emits only complete slices ("X"), process/
thread metadata ("M"), and flow arrows ("s"/"f") for batcher flushes; this
checker re-derives the structural invariants CI relies on so a regression in
the exporter (or in the span wiring upstream of it) fails loudly instead of
producing a trace Perfetto silently mis-renders:

  * the file is a single well-formed JSON object with a traceEvents list and
    an otherData.dropped_events count;
  * only the phases the exporter emits appear (X, M, s, f);
  * every X slice is closed by construction (has ts >= 0 and dur >= 0) and
    carries the span/trace ids the exporter promises;
  * timestamps are rebased (some slice starts at ts == 0) and monotonic in
    file order, the order collect() sorts by;
  * every flow arrow binds to a real slice: each "f" has a matching "s" with
    an earlier-or-equal timestamp, and both endpoints land inside an X slice
    on their own thread (Perfetto drops arrows that don't).

Usage:
  tools/check_trace.py TRACE.json [--expect name=count ...]
  some_tool --trace-out=- | tools/check_trace.py -

--expect asserts an exact number of X slices with the given name, e.g.
  --expect judge=120 --expect pipeline.run=1
Exits 0 and prints a one-line summary on success; prints every violation and
exits 1 otherwise.
"""
import argparse
import collections
import json
import sys

KNOWN_PHASES = {"X", "M", "s", "f"}


def load(path):
    if path == "-":
        return json.load(sys.stdin)
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check(trace, expectations):
    errors = []
    if not isinstance(trace, dict):
        return ["top-level value is not a JSON object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    other = trace.get("otherData")
    if not isinstance(other, dict) or "dropped_events" not in other:
        errors.append("otherData.dropped_events missing")

    slices = []
    flow_starts = {}  # flow id -> earliest "s" timestamp
    flow_ends = []
    last_ts = None
    for i, event in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(event, dict):
            errors.append("%s: not an object" % where)
            continue
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append("%s: unexpected phase %r" % (where, ph))
            continue
        if ph == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                errors.append("%s: unknown metadata %r" % (where,
                                                           event.get("name")))
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append("%s: ph %s has bad ts %r" % (where, ph, ts))
            continue
        if ph == "X":
            dur = event.get("dur")
            name = event.get("name")
            if not isinstance(name, str) or not name:
                errors.append("%s: X slice without a name" % where)
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append("%s: X slice %r has bad dur %r"
                              % (where, name, dur))
                continue
            for key in ("pid", "tid"):
                if not isinstance(event.get(key), int):
                    errors.append("%s: X slice %r missing %s"
                                  % (where, name, key))
            args = event.get("args")
            if not isinstance(args, dict) or "span_id" not in args \
                    or "trace_id" not in args:
                errors.append("%s: X slice %r args lack span_id/trace_id"
                              % (where, name))
            if last_ts is not None and ts < last_ts:
                errors.append("%s: X slice %r ts %s precedes previous slice"
                              " ts %s (collect() order broken)"
                              % (where, name, ts, last_ts))
            last_ts = ts
            slices.append(event)
        elif ph == "s":
            flow_id = event.get("id")
            if flow_id is None:
                errors.append("%s: flow start without id" % where)
            elif flow_id not in flow_starts or ts < flow_starts[flow_id]:
                flow_starts[flow_id] = ts
        elif ph == "f":
            if event.get("bp") != "e":
                errors.append("%s: flow finish without bp:\"e\"" % where)
            if event.get("id") is None:
                errors.append("%s: flow finish without id" % where)
            else:
                flow_ends.append(event)

    if events and not slices:
        errors.append("trace has events but no X slices")
    if slices and min(s["ts"] for s in slices) != 0:
        errors.append("timestamps not rebased: no X slice starts at ts 0")

    def enclosing_slice(tid, ts):
        return any(s.get("tid") == tid and s["ts"] <= ts <= s["ts"] + s["dur"]
                   for s in slices)

    for event in flow_ends:
        flow_id = event["id"]
        if flow_id not in flow_starts:
            errors.append("flow finish id %r has no flow start" % flow_id)
        elif event["ts"] < flow_starts[flow_id]:
            errors.append("flow id %r finishes at ts %s before its start"
                          " at ts %s"
                          % (flow_id, event["ts"], flow_starts[flow_id]))
        if not enclosing_slice(event.get("tid"), event["ts"]):
            errors.append("flow finish id %r at ts %s binds to no X slice"
                          " on tid %r" % (flow_id, event["ts"],
                                          event.get("tid")))
    for flow_id, ts in flow_starts.items():
        # The exporter puts "s" at its flush slice's start ts, same tid.
        starts = [e for e in events
                  if isinstance(e, dict) and e.get("ph") == "s"
                  and e.get("id") == flow_id]
        for e in starts:
            if not enclosing_slice(e.get("tid"), e.get("ts", -1)):
                errors.append("flow start id %r at ts %r binds to no X slice"
                              " on tid %r" % (flow_id, e.get("ts"),
                                              e.get("tid")))

    counts = collections.Counter(s.get("name") for s in slices)
    for name, expected in expectations:
        if counts.get(name, 0) != expected:
            errors.append("expected %d %r slices, found %d"
                          % (expected, name, counts.get(name, 0)))

    return errors, counts, len(flow_ends)


def main():
    parser = argparse.ArgumentParser(
        description="Validate an obs:: Chrome trace-event JSON file.")
    parser.add_argument("trace", help="trace file path, or - for stdin")
    parser.add_argument("--expect", action="append", default=[],
                        metavar="NAME=COUNT",
                        help="require exactly COUNT X slices named NAME")
    args = parser.parse_args()

    expectations = []
    for spec in args.expect:
        name, sep, count = spec.partition("=")
        if not sep or not count.isdigit():
            parser.error("--expect wants NAME=COUNT, got %r" % spec)
        expectations.append((name, int(count)))

    try:
        trace = load(args.trace)
    except (OSError, ValueError) as exc:
        print("check_trace: %s: %s" % (args.trace, exc), file=sys.stderr)
        return 1

    result = check(trace, expectations)
    if isinstance(result, list):  # structural failure before slice checks
        errors, counts, flows = result, collections.Counter(), 0
    else:
        errors, counts, flows = result
    for error in errors:
        print("check_trace: %s" % error, file=sys.stderr)
    if errors:
        return 1
    summary = ", ".join("%s=%d" % (name, counts[name])
                        for name in sorted(counts))
    print("check_trace: OK (%d slices: %s; %d flow arrows)"
          % (sum(counts.values()), summary, flows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
