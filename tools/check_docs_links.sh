#!/usr/bin/env bash
# Fails when README.md or docs/*.md contain a relative markdown link to a
# file that does not exist (the docs CI job runs this; see docs/BENCHMARKS.md
# "CI regression gates"). External links (scheme://, mailto:) and pure
# in-page anchors (#...) are skipped; a link's own #fragment is stripped
# before the existence check.
#
# Usage: tools/check_docs_links.sh [repo-root]
set -euo pipefail

root="${1:-$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)}"

shopt -s nullglob
files=("${root}/README.md" "${root}"/docs/*.md)
if [[ ${#files[@]} -eq 0 ]]; then
  echo "check_docs_links: no markdown files found under ${root}" >&2
  exit 1
fi

dead=0
checked=0
for file in "${files[@]}"; do
  dir="$(dirname "${file}")"
  # Extract every inline markdown link target: [text](target). Reference
  # style links are not used in this repo; grep -o keeps it simple and the
  # docs job loud.
  while IFS= read -r target; do
    case "${target}" in
      *://*|mailto:*|\#*) continue ;;  # external or in-page anchor
    esac
    path="${target%%#*}"              # strip fragment
    [[ -z "${path}" ]] && continue
    checked=$((checked + 1))
    if [[ ! -e "${dir}/${path}" ]]; then
      echo "dead link: ${file#"${root}"/} -> ${target}" >&2
      dead=$((dead + 1))
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "${file}" |
           sed -E 's/^\[[^]]*\]\(//; s/\)$//; s/[[:space:]]+"[^"]*"$//')
done

if [[ ${dead} -gt 0 ]]; then
  echo "check_docs_links: ${dead} dead link(s) in ${#files[@]} file(s)" >&2
  exit 1
fi
echo "check_docs_links: OK (${checked} relative links in ${#files[@]} files)"
