// Tests of the VM runtime library through a mock RuntimeHost — exercising
// printf formatting, stream routing, and the allocator builtins without
// going through lowering.
#include <gtest/gtest.h>

#include "frontend/builtins.hpp"
#include "vm/runtime.hpp"

namespace llm4vv::vm {
namespace {

class MockHost final : public RuntimeHost {
 public:
  Memory& memory() override { return memory_; }
  bool device_mode() const override { return device_mode_; }
  const std::string& string_at(std::uint64_t index) const override {
    return strings_.at(index);
  }
  void write_stdout(const std::string& text) override { out_ += text; }
  void write_stderr(const std::string& text) override { err_ += text; }
  [[noreturn]] void exit_now(int code) override {
    exit_code_ = code;
    throw Trap{TrapKind::kNone, "exit"};
  }
  Value pop() override {
    Value v = stack_.back();
    stack_.pop_back();
    return v;
  }
  void push(Value value) override { stack_.push_back(value); }
  std::uint64_t& rand_state() override { return rand_state_; }

  // test plumbing
  std::uint64_t add_string(std::string text) {
    strings_.push_back(std::move(text));
    return strings_.size() - 1;
  }
  std::vector<Value> stack_;
  std::vector<std::string> strings_;
  std::string out_, err_;
  bool device_mode_ = false;
  int exit_code_ = -1;
  std::uint64_t rand_state_ = 1;

 private:
  Memory memory_;
};

std::int32_t builtin_index(std::string_view name) {
  std::int32_t index = 0;
  for (const auto& b : frontend::builtin_functions()) {
    if (name == b.name) return index;
    ++index;
  }
  ADD_FAILURE() << "no builtin " << name;
  return -1;
}

TEST(FormatPrintfTest, MixedConversions) {
  MockHost host;
  const auto sid = host.add_string("str");
  const std::string out = format_printf(
      host, "d=%d f=%.3f g=%g s=%s c=%c x=%x o=%o",
      {Value::from_int(-5), Value::from_float(2.0), Value::from_float(0.5),
       Value::from_string(sid), Value::from_int('Z'), Value::from_int(255),
       Value::from_int(8)});
  EXPECT_EQ(out, "d=-5 f=2.000 g=0.5 s=str c=Z x=ff o=10");
}

TEST(FormatPrintfTest, LengthModifiersDropped) {
  MockHost host;
  EXPECT_EQ(format_printf(host, "%ld %lld %zu %hd",
                          {Value::from_int(1), Value::from_int(2),
                           Value::from_int(3), Value::from_int(4)}),
            "1 2 3 4");
}

TEST(FormatPrintfTest, MissingArgumentsFormatAsZero) {
  MockHost host;
  EXPECT_EQ(format_printf(host, "%d %d", {Value::from_int(9)}), "9 0");
}

TEST(FormatPrintfTest, PercentEscape) {
  MockHost host;
  EXPECT_EQ(format_printf(host, "100%%", {}), "100%");
}

TEST(FormatPrintfTest, NonStringForPercentS) {
  MockHost host;
  EXPECT_EQ(format_printf(host, "%s", {Value::from_int(7)}),
            "(non-string)");
}

TEST(FormatPrintfTest, TruncatedSpecAtEndIsDropped) {
  MockHost host;
  EXPECT_EQ(format_printf(host, "x=%", {}), "x=");
}

TEST(RuntimeBuiltinTest, MallocFreeRoundTrip) {
  MockHost host;
  host.push(Value::from_int(16));
  const Value p = call_builtin(host, builtin_index("malloc"), 1);
  ASSERT_EQ(p.tag, ValueTag::kPointer);
  EXPECT_NE(p.ptr, 0u);
  EXPECT_EQ(host.memory().live_allocations(), 1u);
  host.push(p);
  call_builtin(host, builtin_index("free"), 1);
  EXPECT_EQ(host.memory().live_allocations(), 0u);
}

TEST(RuntimeBuiltinTest, CallocZeroFills) {
  MockHost host;
  host.push(Value::from_int(3));
  host.push(Value::from_int(1));
  const Value p = call_builtin(host, builtin_index("calloc"), 2);
  for (std::uint64_t i = 0; i < 3; ++i) {
    const Value cell = host.memory().load(p.ptr + i, false);
    EXPECT_EQ(cell.tag, ValueTag::kInt);
    EXPECT_EQ(cell.i, 0);
  }
}

TEST(RuntimeBuiltinTest, PrintfWritesStdoutAndReturnsLength) {
  MockHost host;
  const auto fmt = host.add_string("n=%d\n");
  host.push(Value::from_string(fmt));
  host.push(Value::from_int(12));
  const Value r = call_builtin(host, builtin_index("printf"), 2);
  EXPECT_EQ(host.out_, "n=12\n");
  EXPECT_EQ(r.i, 5);
}

TEST(RuntimeBuiltinTest, FprintfRoutesToStderr) {
  MockHost host;
  const auto fmt = host.add_string("warn %d");
  host.push(Value::from_int(0));  // stream handle (ignored)
  host.push(Value::from_string(fmt));
  host.push(Value::from_int(3));
  call_builtin(host, builtin_index("fprintf"), 3);
  EXPECT_EQ(host.err_, "warn 3");
  EXPECT_TRUE(host.out_.empty());
}

TEST(RuntimeBuiltinTest, F90PrintJoinsWithSpaces) {
  MockHost host;
  const auto text = host.add_string("Test PASSED");
  host.push(Value::from_string(text));
  host.push(Value::from_int(3));
  host.push(Value::from_float(1.5));
  call_builtin(host, builtin_index("f90_print"), 3);
  EXPECT_EQ(host.out_, "Test PASSED 3 1.5\n");
}

TEST(RuntimeBuiltinTest, ExitUnwindsWithCode) {
  MockHost host;
  host.push(Value::from_int(3));
  EXPECT_THROW(call_builtin(host, builtin_index("exit"), 1), Trap);
  EXPECT_EQ(host.exit_code_, 3);
}

TEST(RuntimeBuiltinTest, MathFunctions) {
  MockHost host;
  host.push(Value::from_float(-4.0));
  EXPECT_DOUBLE_EQ(call_builtin(host, builtin_index("fabs"), 1).f, 4.0);
  host.push(Value::from_float(2.0));
  host.push(Value::from_float(10.0));
  EXPECT_DOUBLE_EQ(call_builtin(host, builtin_index("pow"), 2).f, 1024.0);
}

TEST(RuntimeBuiltinTest, AccRuntimeReflectsDeviceMode) {
  MockHost host;
  host.push(Value::from_int(0));
  EXPECT_EQ(call_builtin(host, builtin_index("acc_on_device"), 1).i, 0);
  host.device_mode_ = true;
  host.push(Value::from_int(0));
  EXPECT_EQ(call_builtin(host, builtin_index("acc_on_device"), 1).i, 1);
  EXPECT_EQ(call_builtin(host, builtin_index("omp_is_initial_device"), 0).i,
            0);
}

TEST(RuntimeBuiltinTest, EveryBuiltinHasAnImplementation) {
  // The sema-side table and the runtime dispatch must stay in sync: calling
  // each zero-arg-compatible builtin must not hit the "no implementation"
  // internal trap. For arity>0 builtins we push dummy args.
  MockHost host;
  std::int32_t index = 0;
  for (const auto& b : frontend::builtin_functions()) {
    // exit/abort unwind by design; skip them here.
    if (std::string_view(b.name) == "exit" ||
        std::string_view(b.name) == "abort") {
      ++index;
      continue;
    }
    const int argc = b.variadic ? std::max(b.arity, 1) : b.arity;
    for (int i = 0; i < argc; ++i) {
      // printf-family needs a string first argument.
      const bool stringy =
          i == 0 && (std::string_view(b.name) == "printf" ||
                     std::string_view(b.name) == "puts");
      const bool stringy2 =
          i == 1 && std::string_view(b.name) == "fprintf";
      if (stringy || stringy2) {
        host.push(Value::from_string(host.add_string("x")));
      } else if (std::string_view(b.name) == "free") {
        host.push(Value::from_pointer(0));
      } else {
        host.push(Value::from_int(1));
      }
    }
    EXPECT_NO_THROW(call_builtin(host, index, argc)) << b.name;
    ++index;
  }
}

TEST(RuntimeBuiltinTest, BadBuiltinIndexTraps) {
  MockHost host;
  EXPECT_THROW(call_builtin(host, -1, 0), Trap);
  EXPECT_THROW(call_builtin(host, 10000, 0), Trap);
}

}  // namespace
}  // namespace llm4vv::vm
