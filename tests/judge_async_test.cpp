// Asynchronous judge coverage: JudgeFuture resolution across batcher
// configurations (byte-equivalence with the blocking path), immediate
// cache-hit resolution, in-flight dedup through futures, dropped-future
// claim abandonment, and the popped-chunk vs formed-batch occupancy split.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "corpus/generator.hpp"
#include "judge/judge.hpp"
#include "llm/coder_model.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::judge {
namespace {

using frontend::Flavor;
using frontend::Language;

std::shared_ptr<llm::ModelClient> make_client(llm::BatcherConfig batcher = {},
                                              std::size_t concurrency = 2) {
  return std::make_shared<llm::ModelClient>(
      std::make_shared<const llm::SimulatedCoderModel>(), concurrency,
      /*transcript_capacity=*/0, batcher);
}

frontend::SourceFile sample_file(std::uint64_t seed) {
  return corpus::generate_one("saxpy_offload", Flavor::kOpenACC,
                              Language::kC, seed)
      .file;
}

void expect_same_decision(const JudgeDecision& a, const JudgeDecision& b) {
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.says_valid, b.says_valid);
  EXPECT_EQ(a.prompt, b.prompt);
  EXPECT_EQ(a.completion.text, b.completion.text);
  EXPECT_EQ(a.completion.prompt_tokens, b.completion.prompt_tokens);
  EXPECT_EQ(a.completion.completion_tokens, b.completion.completion_tokens);
}

/// Drain futures with the documented discipline: owned work first, then
/// duplicates of other callers' in-flight keys.
std::vector<JudgeDecision> drain(const std::vector<JudgeFuture>& futures) {
  std::vector<JudgeDecision> decisions(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (!futures[i].waits_on_peer()) decisions[i] = futures[i].get();
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (futures[i].waits_on_peer()) decisions[i] = futures[i].get();
  }
  return decisions;
}

// ---------------------------------------------------------------------------
// Byte-equivalence across batcher configurations (acceptance criterion)
// ---------------------------------------------------------------------------

TEST(JudgeAsyncTest, AsyncDecisionsByteIdenticalToSequentialForAnyNT) {
  // A request set with duplicates, judged via evaluate_async_many under a
  // sweep of (max_batch, window) configs: every decision must be
  // byte-identical to the sequential blocking evaluate() reference.
  std::vector<frontend::SourceFile> files;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    files.push_back(sample_file(seed));
  }
  files.push_back(files[1]);  // duplicates
  files.push_back(files[3]);

  // Reference: sequential blocking evaluation, paper-mode client.
  const Llmj reference_judge(make_client(), llm::PromptStyle::kAgentDirect);
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const toolchain::Executor executor;
  std::vector<toolchain::CompileResult> compiles;
  std::vector<toolchain::ExecutionRecord> execs;
  std::vector<JudgeDecision> reference;
  for (const auto& file : files) {
    compiles.push_back(driver.compile(file));
    execs.push_back(executor.run(compiles.back().module));
  }
  for (std::size_t i = 0; i < files.size(); ++i) {
    reference.push_back(
        reference_judge.evaluate(files[i], &compiles[i], &execs[i], 9));
  }

  const llm::BatcherConfig configs[] = {
      {0, 0},        // paper mode: uncapped immediate flush
      {1, 0},        // strictly sequential passes
      {3, 0},        // capped immediate flush
      {4, 1500},     // adaptive: full or 1.5 ms window
      {100, 1000},   // window-only flushes
  };
  for (const auto& config : configs) {
    for (const bool cache_enabled : {true, false}) {
      JudgeCacheConfig cache;
      cache.enabled = cache_enabled;
      const Llmj judge(make_client(config, 4),
                       llm::PromptStyle::kAgentDirect, cache);
      std::vector<JudgeRequest> requests;
      for (std::size_t i = 0; i < files.size(); ++i) {
        requests.push_back(JudgeRequest{&files[i], &compiles[i], &execs[i]});
      }
      const auto decisions = drain(judge.evaluate_async_many(requests, 9));
      ASSERT_EQ(decisions.size(), reference.size());
      for (std::size_t i = 0; i < decisions.size(); ++i) {
        SCOPED_TRACE("config N=" + std::to_string(config.max_batch) +
                     " T=" + std::to_string(config.window_us) +
                     " cache=" + std::to_string(cache_enabled) +
                     " item=" + std::to_string(i));
        expect_same_decision(decisions[i], reference[i]);
      }
    }
  }
}

TEST(JudgeAsyncTest, SingleAsyncMatchesBlockingEvaluate) {
  auto client = make_client();
  const Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const Llmj blocking(make_client(), llm::PromptStyle::kDirectAnalysis);
  const auto file = sample_file(21);
  const auto future = judge.evaluate_async(JudgeRequest{&file}, 4);
  const auto async_decision = future.get();
  const auto blocking_decision = blocking.evaluate(file, nullptr, nullptr, 4);
  expect_same_decision(async_decision, blocking_decision);
  EXPECT_DOUBLE_EQ(async_decision.completion.latency_seconds,
                   blocking_decision.completion.latency_seconds);
}

// ---------------------------------------------------------------------------
// Resolution timing
// ---------------------------------------------------------------------------

TEST(JudgeAsyncTest, CacheHitResolvesAtSubmissionTime) {
  // max_batch 1 makes every miss its own immediate full flush even though
  // the window is enormous — so the cache can be populated; the hit future
  // must then be ready without any batcher involvement.
  llm::BatcherConfig batcher;
  batcher.max_batch = 1;
  batcher.window_us = 60ull * 1000 * 1000;
  auto client = make_client(batcher);
  const Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const auto file = sample_file(22);
  const auto first = judge.evaluate(file);
  EXPECT_FALSE(first.cached);

  const std::uint64_t requests_before = client->stats().requests;
  const auto hit = judge.evaluate_async(JudgeRequest{&file});
  EXPECT_TRUE(hit.ready());  // resolved at submit: no flush needed
  const auto decision = hit.get();
  EXPECT_TRUE(decision.cached);
  expect_same_decision(decision, first);
  EXPECT_EQ(client->stats().requests, requests_before);  // no model call

  const auto stats = judge.cache_stats();
  EXPECT_GE(stats.async_immediate, 1u);
  EXPECT_GE(stats.async_items, 2u);
}

TEST(JudgeAsyncTest, MissResolvesAtFlush) {
  llm::BatcherConfig batcher;
  batcher.max_batch = 2;
  batcher.window_us = 60ull * 1000 * 1000;
  auto client = make_client(batcher);
  const Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const auto file_a = sample_file(23);
  const auto file_b = sample_file(24);
  const auto future_a = judge.evaluate_async(JudgeRequest{&file_a});
  EXPECT_FALSE(future_a.ready());  // pending in the batcher
  const auto future_b = judge.evaluate_async(JudgeRequest{&file_b});
  // The second submission filled the batch: both resolved by one pass.
  EXPECT_TRUE(future_a.ready());
  EXPECT_TRUE(future_b.ready());
  EXPECT_EQ(client->stats().formed_batches, 1u);
  const auto decision_a = future_a.get();
  const auto decision_b = future_b.get();
  EXPECT_FALSE(decision_a.cached);
  EXPECT_NE(decision_a.prompt, decision_b.prompt);
  // Both are now memoized: the flush-resolved decisions were published.
  EXPECT_TRUE(judge.evaluate(file_a).cached);
  EXPECT_TRUE(judge.evaluate(file_b).cached);
}

// ---------------------------------------------------------------------------
// Cancellation / dropped futures
// ---------------------------------------------------------------------------

TEST(JudgeAsyncTest, DroppedUnresolvedFutureAbandonsItsClaim) {
  llm::BatcherConfig batcher;
  batcher.max_batch = 100;
  batcher.window_us = 3000;
  auto client = make_client(batcher);
  const Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const auto file = sample_file(25);
  {
    const auto dropped = judge.evaluate_async(JudgeRequest{&file});
    EXPECT_FALSE(dropped.ready());
  }  // dropped without get(): the claimed key must be abandoned
  // A subsequent blocking evaluation must not hang waiting on the dropped
  // future's claim — it re-claims and recomputes deterministically.
  const auto recomputed = judge.evaluate(file);
  EXPECT_EQ(recomputed.prompt.empty(), false);
  const auto again = judge.evaluate(file);
  expect_same_decision(again, recomputed);
}

TEST(JudgeAsyncTest, PeerWaitFutureResolvesWhenOwnerPublishes) {
  auto model = std::make_shared<const testutil::GatedModel>();
  auto client = std::make_shared<llm::ModelClient>(model, 4);
  const Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const auto file = sample_file(27);

  // Owner: blocking evaluate from a worker thread, held at the gate.
  JudgeDecision owner_decision;
  std::thread owner([&] { owner_decision = judge.evaluate(file); });
  model->wait_for_entry();

  // Duplicate: async future must classify as a peer wait and resolve with
  // the owner's published decision once the gate opens.
  const auto dup = judge.evaluate_async(JudgeRequest{&file});
  EXPECT_TRUE(dup.waits_on_peer());
  EXPECT_FALSE(dup.ready());
  JudgeDecision dup_decision;
  std::thread waiter([&] { dup_decision = dup.get(); });
  model->release();
  owner.join();
  waiter.join();
  expect_same_decision(dup_decision, owner_decision);
  EXPECT_TRUE(dup_decision.cached);
  EXPECT_GE(judge.cache_stats().duplicate_misses, 1u);
}

TEST(JudgeAsyncTest, PeerWaitReadyTurnsTrueAtPublicationWithoutGet) {
  // Regression: ready() on a peer-wait future must become true once the
  // owning caller publishes — without anyone calling get() on it — so a
  // poll-until-ready loop terminates. It must also never block against a
  // concurrent resolution.
  auto model = std::make_shared<const testutil::GatedModel>();
  auto client = std::make_shared<llm::ModelClient>(model, 4);
  const Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const auto file = sample_file(30);

  JudgeDecision owner_decision;
  std::thread owner([&] { owner_decision = judge.evaluate(file); });
  model->wait_for_entry();

  const auto dup = judge.evaluate_async(JudgeRequest{&file});
  EXPECT_TRUE(dup.waits_on_peer());
  EXPECT_FALSE(dup.ready());  // owner still at the gate, nothing published
  model->release();
  owner.join();  // owner published on its way out
  EXPECT_TRUE(dup.ready());  // observable without get()
  const auto decision = dup.get();
  expect_same_decision(decision, owner_decision);
}

// ---------------------------------------------------------------------------
// Occupancy: popped-chunk view vs formed-batch truth (satellite regression)
// ---------------------------------------------------------------------------

TEST(JudgeAsyncTest, FormedBatchesPinTruthfulOccupancyUnderACap) {
  // Old definition: occupancy derived from the submission group ("popped
  // chunk") — one evaluate_many of 8 misses reads as one batch of 8. New
  // definition: the client's formed passes — with max_batch 4 the same
  // call runs as two passes of 4. This test pins both numbers so the
  // definitions can never silently swap back.
  llm::BatcherConfig batcher;
  batcher.max_batch = 4;
  batcher.window_us = 0;
  auto client = make_client(batcher, 4);
  JudgeCacheConfig off;
  off.enabled = false;
  const Llmj judge(client, llm::PromptStyle::kAgentDirect, off);

  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const toolchain::Executor executor;
  std::vector<frontend::SourceFile> files;
  std::vector<toolchain::CompileResult> compiles;
  std::vector<toolchain::ExecutionRecord> execs;
  for (std::uint64_t seed = 40; seed < 48; ++seed) {
    files.push_back(sample_file(seed));
    compiles.push_back(driver.compile(files.back()));
    execs.push_back(executor.run(compiles.back().module));
  }
  std::vector<JudgeRequest> requests;
  for (std::size_t i = 0; i < files.size(); ++i) {
    requests.push_back(JudgeRequest{&files[i], &compiles[i], &execs[i]});
  }
  const auto decisions = judge.evaluate_many(requests, 0);

  // Popped-chunk view: all 8 decisions rode the batch submission API.
  std::size_t batched = 0;
  for (const auto& decision : decisions) {
    if (decision.batched) ++batched;
  }
  EXPECT_EQ(batched, 8u);  // the old numerator: one "batch of 8"

  // Formed-batch truth: the cap split the group into two passes of 4.
  const auto stats = client->stats();
  EXPECT_EQ(stats.formed_batches, 2u);
  EXPECT_EQ(stats.batches, 2u);
  EXPECT_EQ(stats.batched_prompts, 8u);
  EXPECT_EQ(stats.max_batch, 4u);  // never 8: no pass that large ran
  const double formed_occupancy =
      static_cast<double>(stats.batched_prompts) /
      static_cast<double>(stats.batches);
  EXPECT_DOUBLE_EQ(formed_occupancy, 4.0);
}

}  // namespace
}  // namespace llm4vv::judge
