#include <gtest/gtest.h>

#include "frontend/lexer.hpp"

namespace llm4vv::frontend {
namespace {

LexOutput lex_ok(const std::string& source) {
  DiagnosticEngine diags;
  auto out = lex(source, diags);
  EXPECT_FALSE(diags.has_errors()) << source;
  return out;
}

TEST(LexerTest, EmptySourceYieldsEof) {
  const auto out = lex_ok("");
  ASSERT_EQ(out.tokens.size(), 1u);
  EXPECT_EQ(out.tokens[0].kind, TokenKind::kEof);
}

TEST(LexerTest, KeywordsVsIdentifiers) {
  const auto out = lex_ok("int main foo double");
  EXPECT_EQ(out.tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(out.tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(out.tokens[2].kind, TokenKind::kIdentifier);
  EXPECT_EQ(out.tokens[3].kind, TokenKind::kKeyword);
}

TEST(LexerTest, PositionsAreOneBased) {
  const auto out = lex_ok("a\n  b");
  EXPECT_EQ(out.tokens[0].line, 1);
  EXPECT_EQ(out.tokens[0].column, 1);
  EXPECT_EQ(out.tokens[1].line, 2);
  EXPECT_EQ(out.tokens[1].column, 3);
}

TEST(LexerTest, IntAndFloatLiterals) {
  const auto out = lex_ok("42 3.5 1e-8 0x1F 2.0f 7L");
  EXPECT_EQ(out.tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(out.tokens[1].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(out.tokens[2].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(out.tokens[3].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(out.tokens[4].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(out.tokens[5].kind, TokenKind::kIntLiteral);
}

TEST(LexerTest, StringEscapes) {
  const auto out = lex_ok(R"("a\nb\t\"q\"")");
  ASSERT_EQ(out.tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(out.tokens[0].text, "a\nb\t\"q\"");
}

TEST(LexerTest, CharLiteral) {
  const auto out = lex_ok("'x' '\\n'");
  EXPECT_EQ(out.tokens[0].kind, TokenKind::kCharLiteral);
  EXPECT_EQ(out.tokens[0].text, "x");
  EXPECT_EQ(out.tokens[1].text, "\n");
}

TEST(LexerTest, UnterminatedStringReported) {
  DiagnosticEngine diags;
  lex("\"never closed\n", diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kUnterminated));
}

TEST(LexerTest, UnterminatedBlockCommentReported) {
  DiagnosticEngine diags;
  lex("/* open forever", diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kUnterminated));
}

TEST(LexerTest, CommentsAreSkipped) {
  const auto out = lex_ok("a // line comment\nb /* block */ c");
  ASSERT_GE(out.tokens.size(), 4u);
  EXPECT_EQ(out.tokens[0].text, "a");
  EXPECT_EQ(out.tokens[1].text, "b");
  EXPECT_EQ(out.tokens[2].text, "c");
}

TEST(LexerTest, PragmaCapturedAsOneToken) {
  const auto out =
      lex_ok("#pragma acc parallel loop copyin(a[0:n])\nint x;");
  ASSERT_EQ(out.tokens[0].kind, TokenKind::kPragma);
  EXPECT_EQ(out.tokens[0].text, "#pragma acc parallel loop copyin(a[0:n])");
  EXPECT_EQ(out.tokens[1].kind, TokenKind::kKeyword);
}

TEST(LexerTest, PragmaLineContinuationFolded) {
  const auto out = lex_ok("#pragma omp target \\\n  map(to: a)\nx");
  ASSERT_EQ(out.tokens[0].kind, TokenKind::kPragma);
  EXPECT_NE(out.tokens[0].text.find("map(to: a)"), std::string::npos);
  EXPECT_EQ(out.tokens[1].line, 3);
}

TEST(LexerTest, IncludeBecomesToken) {
  const auto out = lex_ok("#include <stdio.h>\nint x;");
  EXPECT_EQ(out.tokens[0].kind, TokenKind::kHashInclude);
}

TEST(LexerTest, DefineSubstitutesIntoIdentifiers) {
  const auto out = lex_ok("#define N 256\nint a[N];");
  bool found = false;
  for (const auto& tok : out.tokens) {
    if (tok.kind == TokenKind::kIntLiteral && tok.text == "256") found = true;
    EXPECT_NE(tok.text, "N");
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(out.defines.at("N"), "256");
}

TEST(LexerTest, DefineWithExpressionBody) {
  const auto out = lex_ok("#define SZ 16 * 4\nint a = SZ;");
  // The substitution should produce 16, *, 4 tokens in place of SZ.
  std::vector<std::string> texts;
  for (const auto& tok : out.tokens) texts.push_back(tok.text);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "16"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "4"), texts.end());
}

TEST(LexerTest, MultiCharOperators) {
  const auto out = lex_ok("== != <= >= && || << >> += -= *= /= ++ -- ->");
  const TokenKind kinds[] = {
      TokenKind::kEqEq, TokenKind::kBangEq, TokenKind::kLessEq,
      TokenKind::kGreaterEq, TokenKind::kAmpAmp, TokenKind::kPipePipe,
      TokenKind::kShl, TokenKind::kShr, TokenKind::kPlusEq,
      TokenKind::kMinusEq, TokenKind::kStarEq, TokenKind::kSlashEq,
      TokenKind::kPlusPlus, TokenKind::kMinusMinus, TokenKind::kArrow};
  for (std::size_t i = 0; i < std::size(kinds); ++i) {
    EXPECT_EQ(out.tokens[i].kind, kinds[i]) << i;
  }
}

TEST(LexerTest, StrayCharacterReported) {
  DiagnosticEngine diags;
  lex("int a @ b;", diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kUnexpectedToken));
}

TEST(LexerTest, IsKeywordTable) {
  EXPECT_TRUE(is_keyword("for"));
  EXPECT_TRUE(is_keyword("sizeof"));
  EXPECT_FALSE(is_keyword("pragma"));
  EXPECT_FALSE(is_keyword("main"));
}

TEST(LexerTest, TokenKindNamesAreNonEmpty) {
  for (int k = 0; k <= static_cast<int>(TokenKind::kDot); ++k) {
    EXPECT_STRNE(token_kind_name(static_cast<TokenKind>(k)), "?");
  }
}

}  // namespace
}  // namespace llm4vv::frontend
