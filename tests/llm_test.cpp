#include <gtest/gtest.h>

#include <thread>

#include "corpus/generator.hpp"
#include "judge/prompt.hpp"
#include "llm/client.hpp"
#include "llm/coder_model.hpp"
#include "llm/perception.hpp"
#include "llm/tokenizer.hpp"
#include "probing/mutation.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::llm {
namespace {

using frontend::Flavor;
using frontend::Language;

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

class TokenizerRoundTripTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(TokenizerRoundTripTest, DecodeOfEncodeIsIdentity) {
  const auto& tokenizer = default_tokenizer();
  const std::string& text = GetParam();
  EXPECT_EQ(tokenizer.decode(tokenizer.encode(text)), text);
}

INSTANTIATE_TEST_SUITE_P(
    Texts, TokenizerRoundTripTest,
    ::testing::Values(
        "", "a", "#pragma acc parallel loop copyin(a[0:N])",
        "int main() { return 0; }",
        "non-ascii bytes: \xc3\xa9\xf0\x9f\x98\x80 and \x01\x02",
        "program t\n  !$acc parallel loop\nend program t\n",
        "FINAL JUDGEMENT: valid"));

TEST(TokenizerTest, RoundTripOnGeneratedCorpus) {
  auto gen = testutil::corpus_config(Flavor::kOpenACC, 12, 31);
  gen.fortran_share = 0.3;
  const auto& tokenizer = default_tokenizer();
  for (const auto& tc : corpus::generate_suite(gen).cases) {
    EXPECT_EQ(tokenizer.decode(tokenizer.encode(tc.file.content)),
              tc.file.content)
        << tc.file.name;
  }
}

TEST(TokenizerTest, CountMatchesEncodeSize) {
  const auto& tokenizer = default_tokenizer();
  const auto tc = corpus::generate_one("saxpy_offload", Flavor::kOpenACC,
                                       Language::kC, 3);
  EXPECT_EQ(tokenizer.count_tokens(tc.file.content),
            tokenizer.encode(tc.file.content).size());
}

TEST(TokenizerTest, FragmentsCompressCode) {
  const auto& tokenizer = default_tokenizer();
  const auto tc = corpus::generate_one("saxpy_offload", Flavor::kOpenACC,
                                       Language::kC, 3);
  const double chars_per_token =
      static_cast<double>(tc.file.content.size()) /
      static_cast<double>(tokenizer.count_tokens(tc.file.content));
  EXPECT_GT(chars_per_token, 2.5);  // far better than byte-level
}

TEST(TokenizerTest, VocabIncludesAllBytes) {
  const auto& tokenizer = default_tokenizer();
  EXPECT_GE(tokenizer.vocab_size(), 256u);
  EXPECT_EQ(tokenizer.token_text(65), "A");
  EXPECT_THROW(tokenizer.token_text(-1), std::out_of_range);
  EXPECT_THROW(
      tokenizer.token_text(static_cast<std::int32_t>(
          tokenizer.vocab_size())),
      std::out_of_range);
}

// ---------------------------------------------------------------------------
// Perception
// ---------------------------------------------------------------------------

frontend::SourceFile test_file(Flavor flavor, std::uint64_t seed = 11) {
  return corpus::generate_one("saxpy_offload", flavor, Language::kC, seed)
      .file;
}

TEST(PerceptionTest, DetectsDirectStyle) {
  const auto view =
      perceive(judge::direct_analysis_prompt(test_file(Flavor::kOpenACC)));
  EXPECT_EQ(view.style, PromptStyle::kDirectAnalysis);
  EXPECT_EQ(view.flavor, Flavor::kOpenACC);
  EXPECT_FALSE(view.has_tool_info);
}

TEST(PerceptionTest, DetectsAgentStylesAndToolOutputs) {
  const auto file = test_file(Flavor::kOpenMP);
  const auto driver = testutil::clean_driver(Flavor::kOpenMP);
  const auto compiled = driver.compile(file);
  const auto ran = toolchain::Executor().run(compiled.module);

  const auto direct_view =
      perceive(judge::agent_direct_prompt(file, compiled, ran));
  EXPECT_EQ(direct_view.style, PromptStyle::kAgentDirect);
  EXPECT_TRUE(direct_view.has_tool_info);
  EXPECT_EQ(direct_view.compiler_rc, 0);
  EXPECT_EQ(direct_view.program_rc, 0);
  EXPECT_EQ(direct_view.flavor, Flavor::kOpenMP);

  const auto indirect_view =
      perceive(judge::agent_indirect_prompt(file, compiled, ran));
  EXPECT_EQ(indirect_view.style, PromptStyle::kAgentIndirect);
}

TEST(PerceptionTest, ExtractsEmbeddedCode) {
  const auto file = test_file(Flavor::kOpenACC);
  const auto view = perceive(judge::direct_analysis_prompt(file));
  EXPECT_NE(view.code.find("#pragma acc"), std::string::npos);
  EXPECT_NE(view.code.find("int main()"), std::string::npos);
}

TEST(PerceptionTest, ReadsNonZeroReturnCodes) {
  auto file = test_file(Flavor::kOpenACC);
  file.content = "int main() { return ghost; }";
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled = driver.compile(file);
  const auto ran = toolchain::Executor().run(compiled.module);
  const auto view =
      perceive(judge::agent_direct_prompt(file, compiled, ran));
  EXPECT_NE(view.compiler_rc, 0);
  EXPECT_NE(view.program_rc, 0);  // "-1" for could-not-run
}

struct EvidenceCase {
  probing::IssueType issue;
  bool expect_no_directives;
  bool expect_misspell;
  bool expect_brace;
  bool expect_undeclared;
};

class PerceptionEvidenceTest
    : public ::testing::TestWithParam<EvidenceCase> {};

TEST_P(PerceptionEvidenceTest, MutationYieldsExpectedEvidence) {
  const auto& param = GetParam();
  const auto file = test_file(Flavor::kOpenACC, 21);
  probing::MutationConfig config;
  config.swap_directive_share = 1.0;  // issue 0 -> misspell arm
  support::Rng rng(55);
  const auto mutated = probing::apply_mutation(
      file.content, file.language, param.issue, config, rng);
  ASSERT_TRUE(mutated.has_value());

  PromptPerception view;
  analyze_code(*mutated, Flavor::kOpenACC, view);
  EXPECT_EQ(view.no_directives, param.expect_no_directives);
  if (!param.expect_no_directives) {
    EXPECT_EQ(view.misspelled_directive, param.expect_misspell);
    EXPECT_EQ(view.brace_imbalance, param.expect_brace);
    EXPECT_EQ(view.undeclared_identifier, param.expect_undeclared);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Mutations, PerceptionEvidenceTest,
    ::testing::Values(
        EvidenceCase{probing::IssueType::kRemovedAllocOrSwappedDirective,
                     false, true, false, false},
        EvidenceCase{probing::IssueType::kRemovedOpeningBracket, false,
                     false, true, false},
        EvidenceCase{probing::IssueType::kUndeclaredVariable, false, false,
                     false, true},
        EvidenceCase{probing::IssueType::kReplacedWithPlainCode, true,
                     false, false, false}));

TEST(PerceptionTest, ValidFileHasNoEvidence) {
  PromptPerception view;
  analyze_code(test_file(Flavor::kOpenACC).content, Flavor::kOpenACC, view);
  EXPECT_FALSE(view.no_directives);
  EXPECT_FALSE(view.any_code_evidence());
}

TEST(PerceptionTest, UninitPointerDetectedAfterAllocRemoval) {
  const auto file = test_file(Flavor::kOpenACC, 33);
  probing::MutationConfig config;
  config.swap_directive_share = 0.0;  // force allocation removal
  support::Rng rng(66);
  const auto mutated = probing::apply_mutation(
      file.content, file.language,
      probing::IssueType::kRemovedAllocOrSwappedDirective, config, rng);
  ASSERT_TRUE(mutated.has_value());
  PromptPerception view;
  analyze_code(*mutated, Flavor::kOpenACC, view);
  EXPECT_TRUE(view.uninit_pointer);
}

TEST(PerceptionTest, LogicMismatchAfterTrailingBlockRemoval) {
  const auto file = test_file(Flavor::kOpenACC, 44);
  probing::MutationConfig config;
  config.issue4_function_tail_share = 0.0;
  support::Rng rng(77);
  const auto mutated = probing::apply_mutation(
      file.content, file.language,
      probing::IssueType::kRemovedLastBracketedSection, config, rng);
  ASSERT_TRUE(mutated.has_value());
  PromptPerception view;
  analyze_code(*mutated, Flavor::kOpenACC, view);
  EXPECT_TRUE(view.logic_mismatch);
}

TEST(PerceptionTest, MissingReturnAfterFunctionTailRemoval) {
  const auto file = test_file(Flavor::kOpenMP, 44);
  probing::MutationConfig config;
  config.issue4_function_tail_share = 1.0;
  support::Rng rng(88);
  const auto mutated = probing::apply_mutation(
      file.content, file.language,
      probing::IssueType::kRemovedLastBracketedSection, config, rng);
  ASSERT_TRUE(mutated.has_value());
  PromptPerception view;
  analyze_code(*mutated, Flavor::kOpenMP, view);
  EXPECT_TRUE(view.missing_return || view.brace_imbalance);
}

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

TEST(ProfilesTest, AllParametersAreProbabilities) {
  for (const auto flavor : {Flavor::kOpenACC, Flavor::kOpenMP}) {
    for (const auto style :
         {PromptStyle::kDirectAnalysis, PromptStyle::kAgentDirect,
          PromptStyle::kAgentIndirect}) {
      const auto& p = judge_profile(flavor, style);
      for (const double q :
           {p.q_no_directives, p.q_misspelled_directive,
            p.q_brace_imbalance, p.q_undeclared, p.q_uninit_pointer,
            p.q_logic_mismatch, p.q_missing_return,
            p.q_compile_failed_corroborated, p.q_compile_failed_alone,
            p.q_run_failed_corroborated, p.q_run_failed_alone,
            p.false_invalid_rate, p.protocol_violation_rate}) {
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 1.0);
      }
    }
  }
}

TEST(ProfilesTest, OmpDirectHasTheNonOmpBlindSpot) {
  // The paper's most striking Part One finding (Table II, issue 3: 4%).
  const auto& p = judge_profile(Flavor::kOpenMP,
                                PromptStyle::kDirectAnalysis);
  EXPECT_LT(p.q_no_directives, 0.10);
  const auto& acc = judge_profile(Flavor::kOpenACC,
                                  PromptStyle::kDirectAnalysis);
  EXPECT_GT(acc.q_no_directives, 0.70);
}

TEST(ProfilesTest, OmpDirectIsHarshOnValidFiles) {
  // Table II, no-issue row: 39% accuracy -> ~0.61 false-invalid rate.
  const auto& p = judge_profile(Flavor::kOpenMP,
                                PromptStyle::kDirectAnalysis);
  EXPECT_GT(p.false_invalid_rate, 0.5);
}

// ---------------------------------------------------------------------------
// SimulatedCoderModel
// ---------------------------------------------------------------------------

TEST(CoderModelTest, DeterministicPerPromptAndSeed) {
  const SimulatedCoderModel model;
  const auto prompt =
      judge::direct_analysis_prompt(test_file(Flavor::kOpenACC));
  GenerationParams params;
  params.seed = 7;
  const auto a = model.generate(prompt, params);
  const auto b = model.generate(prompt, params);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.prompt_tokens, b.prompt_tokens);
}

TEST(CoderModelTest, SeedChangesCanChangeVerdicts) {
  const SimulatedCoderModel model;
  // A file whose verdict is genuinely stochastic (valid ACC file under the
  // direct prompt has a 12% false-invalid rate).
  int flips = 0;
  for (std::uint64_t file_seed = 0; file_seed < 30; ++file_seed) {
    const auto prompt = judge::direct_analysis_prompt(
        test_file(Flavor::kOpenACC, file_seed));
    GenerationParams pa, pb;
    pa.seed = 1;
    pb.seed = 2;
    if (model.generate(prompt, pa).text != model.generate(prompt, pb).text) {
      ++flips;
    }
  }
  EXPECT_GT(flips, 0);
}

TEST(CoderModelTest, CompletionFollowsProtocolVocabulary) {
  const SimulatedCoderModel model;
  const auto file = test_file(Flavor::kOpenACC);
  const auto direct = model.generate(judge::direct_analysis_prompt(file), {});
  EXPECT_TRUE(direct.text.find("FINAL JUDGEMENT: correct") !=
                  std::string::npos ||
              direct.text.find("FINAL JUDGEMENT: incorrect") !=
                  std::string::npos)
      << direct.text;

  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled = driver.compile(file);
  const auto ran = toolchain::Executor().run(compiled.module);
  const auto agent =
      model.generate(judge::agent_direct_prompt(file, compiled, ran), {});
  EXPECT_TRUE(agent.text.find("FINAL JUDGEMENT: valid") !=
                  std::string::npos ||
              agent.text.find("FINAL JUDGEMENT: invalid") !=
                  std::string::npos)
      << agent.text;
}

TEST(CoderModelTest, LatencyScalesWithPromptSize) {
  const SimulatedCoderModel model;
  auto small = test_file(Flavor::kOpenACC);
  auto large = small;
  for (int i = 0; i < 200; ++i) {
    large.content += "// extra commentary line for prompt growth\n";
  }
  const auto a = model.generate(judge::direct_analysis_prompt(small), {});
  const auto b = model.generate(judge::direct_analysis_prompt(large), {});
  EXPECT_GT(b.prompt_tokens, a.prompt_tokens);
  EXPECT_GT(b.latency_seconds, a.latency_seconds);
}

TEST(CoderModelTest, InvalidProbabilityReflectsEvidence) {
  const SimulatedCoderModel model;
  PromptPerception clean;
  clean.style = PromptStyle::kAgentDirect;
  clean.flavor = Flavor::kOpenACC;
  clean.has_tool_info = true;
  const double p_clean = model.invalid_probability(clean);

  PromptPerception broken = clean;
  broken.compiler_rc = 2;
  broken.brace_imbalance = true;
  const double p_broken = model.invalid_probability(broken);
  EXPECT_GT(p_broken, p_clean + 0.3);

  PromptPerception plain = clean;
  plain.no_directives = true;
  EXPECT_NEAR(model.invalid_probability(plain),
              judge_profile(Flavor::kOpenACC, PromptStyle::kAgentDirect)
                  .q_no_directives,
              1e-12);
}

TEST(CoderModelTest, NameMentionsTheSimulatedModel) {
  EXPECT_NE(SimulatedCoderModel().name().find("deepseek-coder"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// ModelClient
// ---------------------------------------------------------------------------

TEST(ModelClientTest, AccumulatesStats) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 2);
  const auto prompt =
      judge::direct_analysis_prompt(test_file(Flavor::kOpenACC));
  client.complete(prompt);
  client.complete(prompt);
  const auto stats = client.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_GT(stats.prompt_tokens, 0u);
  EXPECT_GT(stats.completion_tokens, 0u);
  EXPECT_GT(stats.gpu_seconds, 0.0);
}

TEST(ModelClientTest, NullModelThrows) {
  EXPECT_THROW(ModelClient(nullptr, 1), std::invalid_argument);
}

TEST(ModelClientTest, TranscriptRingKeepsMostRecent) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 1, /*transcript_capacity=*/2);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    client.complete(
        judge::direct_analysis_prompt(test_file(Flavor::kOpenACC, seed)));
  }
  EXPECT_EQ(client.transcripts().size(), 2u);
}

TEST(ModelClientTest, ConcurrentCallsAllComplete) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 3);
  const auto prompt =
      judge::direct_analysis_prompt(test_file(Flavor::kOpenACC));
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&client, &prompt] {
      for (int i = 0; i < 10; ++i) client.complete(prompt);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(client.stats().requests, 80u);
}

TEST(PromptStyleTest, NamesMatchPaperTerminology) {
  EXPECT_STREQ(prompt_style_name(PromptStyle::kDirectAnalysis),
               "non-agent LLMJ");
  EXPECT_STREQ(prompt_style_name(PromptStyle::kAgentDirect), "LLMJ 1");
  EXPECT_STREQ(prompt_style_name(PromptStyle::kAgentIndirect), "LLMJ 2");
}

}  // namespace
}  // namespace llm4vv::llm
