#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "directive/validator.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::directive {
namespace {

using frontend::DiagCode;
using frontend::DiagnosticEngine;
using frontend::Flavor;

// ---------------------------------------------------------------------------
// parse_directive
// ---------------------------------------------------------------------------

TEST(DirectiveParseTest, SimpleAccDirective) {
  const auto dir = parse_directive("#pragma acc parallel loop");
  ASSERT_TRUE(dir.parse_ok);
  EXPECT_EQ(dir.flavor, Flavor::kOpenACC);
  ASSERT_EQ(dir.name_words.size(), 2u);
  EXPECT_EQ(dir.name_words[0], "parallel");
  EXPECT_EQ(dir.name_words[1], "loop");
  EXPECT_TRUE(dir.clauses.empty());
}

TEST(DirectiveParseTest, ClausesWithArguments) {
  const auto dir = parse_directive(
      "#pragma acc parallel loop copyin(a[0:n]) reduction(+:sum) "
      "num_gangs(8)");
  ASSERT_TRUE(dir.parse_ok);
  ASSERT_EQ(dir.clauses.size(), 3u);
  EXPECT_EQ(dir.clauses[0].name, "copyin");
  EXPECT_EQ(dir.clauses[0].argument, "a[0:n]");
  EXPECT_EQ(dir.clauses[1].argument, "+:sum");
  EXPECT_TRUE(dir.clauses[2].has_argument);
}

TEST(DirectiveParseTest, BareClausesAfterArgumentedClause) {
  const auto dir =
      parse_directive("#pragma omp parallel for schedule(static) nowait");
  ASSERT_TRUE(dir.parse_ok);
  ASSERT_EQ(dir.clauses.size(), 2u);
  EXPECT_EQ(dir.clauses[1].name, "nowait");
  EXPECT_FALSE(dir.clauses[1].has_argument);
}

TEST(DirectiveParseTest, FortranSentinel) {
  const auto dir = parse_directive("!$acc parallel loop copy(a(1:n))");
  ASSERT_TRUE(dir.parse_ok);
  EXPECT_EQ(dir.flavor, Flavor::kOpenACC);
  EXPECT_EQ(dir.clauses[0].argument, "a(1:n)");
}

TEST(DirectiveParseTest, OmpSentinel) {
  const auto dir = parse_directive("!$omp target teams distribute");
  ASSERT_TRUE(dir.parse_ok);
  EXPECT_EQ(dir.flavor, Flavor::kOpenMP);
  EXPECT_EQ(dir.name_words.size(), 3u);
}

TEST(DirectiveParseTest, UnknownNamespaceFails) {
  const auto dir = parse_directive("#pragma ivdep");
  EXPECT_FALSE(dir.parse_ok);
}

TEST(DirectiveParseTest, UnbalancedParensFail) {
  const auto dir = parse_directive("#pragma acc parallel copyin(a[0:n]");
  EXPECT_FALSE(dir.parse_ok);
}

TEST(DirectiveParseTest, NestedParensInClause) {
  const auto dir =
      parse_directive("#pragma acc parallel loop copy(grid[0:(n*n)])");
  ASSERT_TRUE(dir.parse_ok);
  EXPECT_EQ(dir.clauses[0].argument, "grid[0:(n*n)]");
}

TEST(DirectiveParseTest, DirectiveNameRendering) {
  const auto dir =
      parse_directive("#pragma omp target teams distribute parallel for");
  EXPECT_EQ(directive_name(dir), "target teams distribute parallel for");
}

// ---------------------------------------------------------------------------
// clause_variables
// ---------------------------------------------------------------------------

TEST(ClauseVariablesTest, SimpleList) {
  ClauseIR clause{"copyin", "a, b, c", true};
  const auto vars = clause_variables(clause);
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(vars[0], "a");
  EXPECT_EQ(vars[2], "c");
}

TEST(ClauseVariablesTest, ArraySectionsDropSubscripts) {
  ClauseIR clause{"copyin", "a[0:n], b[2:m]", true};
  const auto vars = clause_variables(clause);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], "a");
  EXPECT_EQ(vars[1], "b");
}

TEST(ClauseVariablesTest, FortranSections) {
  ClauseIR clause{"copy", "x(1:n)", true};
  const auto vars = clause_variables(clause);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], "x");
}

TEST(ClauseVariablesTest, ReductionPrefixStripped) {
  ClauseIR clause{"reduction", "+:sum", true};
  const auto vars = clause_variables(clause);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], "sum");
}

TEST(ClauseVariablesTest, MapTypePrefixStripped) {
  ClauseIR clause{"map", "tofrom: v[0:4]", true};
  const auto vars = clause_variables(clause);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0], "v");
}

// ---------------------------------------------------------------------------
// Spec registries
// ---------------------------------------------------------------------------

TEST(SpecTest, LongestPrefixWins) {
  const auto& registry = openmp_registry();
  std::size_t consumed = 0;
  const auto* spec = registry.match(
      {"target", "teams", "distribute", "parallel", "for", "simd"},
      consumed);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(consumed, 6u);
}

TEST(SpecTest, PrefixMatchLeavesTrailingWords) {
  const auto& registry = openacc_registry();
  std::size_t consumed = 0;
  const auto* spec = registry.match({"loop", "gang", "vector"}, consumed);
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(consumed, 1u);
  EXPECT_EQ(spec->name_words[0], "loop");
}

TEST(SpecTest, UnknownDirectiveReturnsNull) {
  const auto& registry = openacc_registry();
  std::size_t consumed = 0;
  EXPECT_EQ(registry.match({"paralel"}, consumed), nullptr);
}

TEST(SpecTest, ConstructFlags) {
  std::size_t consumed = 0;
  EXPECT_TRUE(openacc_registry().match({"parallel"}, consumed)->is_construct);
  EXPECT_FALSE(openacc_registry().match({"update"}, consumed)->is_construct);
  EXPECT_TRUE(openmp_registry().match({"target"}, consumed)->is_construct);
  EXPECT_FALSE(openmp_registry().match({"barrier"}, consumed)->is_construct);
}

TEST(SpecTest, ReductionOperators) {
  EXPECT_TRUE(is_valid_reduction_op(Flavor::kOpenACC, "+"));
  EXPECT_TRUE(is_valid_reduction_op(Flavor::kOpenACC, "max"));
  EXPECT_TRUE(is_valid_reduction_op(Flavor::kOpenACC, "&&"));
  EXPECT_FALSE(is_valid_reduction_op(Flavor::kOpenACC, "-"));
  EXPECT_TRUE(is_valid_reduction_op(Flavor::kOpenMP, "-"));
  EXPECT_FALSE(is_valid_reduction_op(Flavor::kOpenMP, "avg"));
}

TEST(SpecTest, MapTypes) {
  for (const char* ok : {"to", "from", "tofrom", "alloc", "release",
                         "delete"}) {
    EXPECT_TRUE(is_valid_map_type(ok)) << ok;
  }
  EXPECT_FALSE(is_valid_map_type("always"));
  EXPECT_FALSE(is_valid_map_type("tooo"));
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

DirectiveValidation check(const std::string& text, Flavor flavor,
                          int version, DiagnosticEngine& diags) {
  ValidatorOptions options;
  options.flavor = flavor;
  options.supported_version = version;
  return validate_directive(parse_directive(text), options, 1, diags);
}

TEST(ValidatorTest, ValidDirectivePasses) {
  DiagnosticEngine diags;
  const auto v = check("#pragma acc parallel loop copyin(a) copyout(b)",
                       Flavor::kOpenACC, 33, diags);
  EXPECT_TRUE(v.ok);
  EXPECT_FALSE(diags.has_errors());
}

TEST(ValidatorTest, MisspelledDirectiveFails) {
  DiagnosticEngine diags;
  check("#pragma acc paralel loop", Flavor::kOpenACC, 33, diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kBadDirective));
}

TEST(ValidatorTest, InapplicableClauseFails) {
  DiagnosticEngine diags;
  // `num_threads` is an OpenMP clause; not valid on acc parallel.
  check("#pragma acc parallel num_threads(4)", Flavor::kOpenACC, 33, diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kBadClause));
}

TEST(ValidatorTest, MissingRequiredArgumentFails) {
  DiagnosticEngine diags;
  check("#pragma acc parallel loop copyin", Flavor::kOpenACC, 33, diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kBadClauseArg));
}

TEST(ValidatorTest, ForbiddenArgumentFails) {
  DiagnosticEngine diags;
  check("#pragma acc loop seq(2)", Flavor::kOpenACC, 33, diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kBadClauseArg));
}

TEST(ValidatorTest, BadReductionOperatorFails) {
  DiagnosticEngine diags;
  check("#pragma acc parallel loop reduction(avg:sum)", Flavor::kOpenACC,
        33, diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kBadClauseArg));
}

TEST(ValidatorTest, BadMapTypeFails) {
  DiagnosticEngine diags;
  check("#pragma omp target map(sideways: a[0:4])", Flavor::kOpenMP, 45,
        diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kBadClauseArg));
}

TEST(ValidatorTest, MapWithSectionButNoTypeIsFine) {
  DiagnosticEngine diags;
  check("#pragma omp target map(a[0:4])", Flavor::kOpenMP, 45, diags);
  EXPECT_FALSE(diags.has_errors());
}

TEST(ValidatorTest, VersionGateRejectsNewDirectives) {
  DiagnosticEngine diags;
  check("#pragma omp loop bind(teams)", Flavor::kOpenMP, 45, diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kVersionGate));
}

TEST(ValidatorTest, VersionGateRejectsNewClauses) {
  DiagnosticEngine diags;
  // taskwait exists since 3.0 but its depend clause is 5.0.
  check("#pragma omp taskwait depend(in: x)", Flavor::kOpenMP, 45, diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kVersionGate));
}

TEST(ValidatorTest, Version50AcceptsGatedFeatures) {
  DiagnosticEngine diags;
  check("#pragma omp loop bind(teams)", Flavor::kOpenMP, 50, diags);
  EXPECT_FALSE(diags.has_errors());
}

TEST(ValidatorTest, WrongFlavorIsWarningOnly) {
  DiagnosticEngine diags;
  const auto v =
      check("#pragma omp parallel for", Flavor::kOpenACC, 33, diags);
  EXPECT_TRUE(v.ok);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_FALSE(diags.diagnostics().empty());  // but a warning exists
}

TEST(ValidatorTest, UndeclaredClauseVariableFails) {
  ValidatorOptions options;
  options.flavor = Flavor::kOpenACC;
  options.is_declared = [](const std::string& name) { return name == "a"; };
  DiagnosticEngine diags;
  validate_directive(parse_directive("#pragma acc parallel loop copyin(zz)"),
                     options, 1, diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kBadClauseArg));
}

TEST(ValidatorTest, LoopDirectiveWantsLoopStatement) {
  frontend::DiagnosticEngine diags;
  testutil::analyze_source(
      "int main() {\n"
      "  int x = 0;\n"
      "#pragma acc parallel loop\n"
      "  x = 1;\n"
      "  return x;\n"
      "}",
      diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kBadDirective));
}

TEST(ValidatorTest, PragmaTakesStatementClassifier) {
  EXPECT_TRUE(pragma_takes_statement("#pragma acc parallel loop"));
  EXPECT_TRUE(pragma_takes_statement("#pragma omp target teams distribute"));
  EXPECT_TRUE(pragma_takes_statement("#pragma omp atomic"));
  EXPECT_FALSE(pragma_takes_statement("#pragma acc update host(a)"));
  EXPECT_FALSE(pragma_takes_statement("#pragma acc enter data copyin(a)"));
  EXPECT_FALSE(pragma_takes_statement("#pragma omp barrier"));
  EXPECT_FALSE(pragma_takes_statement("#pragma acc wait"));
  EXPECT_FALSE(pragma_takes_statement("#pragma nonsense here"));
}

// ---------------------------------------------------------------------------
// Property: every corpus template emits only spec-valid directives
// ---------------------------------------------------------------------------

struct TemplateCase {
  std::string template_name;
  Flavor flavor;
};

class TemplateDirectiveTest
    : public ::testing::TestWithParam<TemplateCase> {};

TEST_P(TemplateDirectiveTest, AllPragmasValidate) {
  const auto& param = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto tc = corpus::generate_one(param.template_name, param.flavor,
                                         frontend::Language::kC, seed);
    frontend::DiagnosticEngine diags;
    testutil::analyze_source(tc.file.content, diags, param.flavor);
    EXPECT_FALSE(diags.has_errors())
        << param.template_name << " seed " << seed << ": "
        << (diags.diagnostics().empty() ? ""
                                        : diags.diagnostics()[0].message);
  }
}

std::vector<TemplateCase> all_template_cases() {
  std::vector<TemplateCase> cases;
  for (const auto flavor : {Flavor::kOpenACC, Flavor::kOpenMP}) {
    for (const auto& name : corpus::template_names(flavor, 45)) {
      cases.push_back(TemplateCase{name, flavor});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, TemplateDirectiveTest,
    ::testing::ValuesIn(all_template_cases()),
    // Not `info`: INSTANTIATE_TEST_SUITE_P expands the lambda inside a
    // generated function whose own parameter is named `info` (-Wshadow).
    [](const ::testing::TestParamInfo<TemplateCase>& param_info) {
      return param_info.param.template_name + "_" +
             (param_info.param.flavor == Flavor::kOpenACC ? "acc" : "omp");
    });

}  // namespace
}  // namespace llm4vv::directive
