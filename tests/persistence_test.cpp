// Cross-run persistence through the artifact store: judge-verdict warm
// starts (byte-identical decisions, persisted-hit accounting, fingerprint
// invalidation, corruption recovery, save-under-concurrency) and the
// compile cache (front-end skipping in memory and across store round
// trips), plus the pipeline-level counters.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "cache/compile_cache.hpp"
#include "corpus/generator.hpp"
#include "judge/judge.hpp"
#include "llm/coder_model.hpp"
#include "pipeline/validation_pipeline.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::judge {
namespace {

using cache::ArtifactStore;
using cache::ArtifactStoreConfig;
using cache::StoreFingerprint;
using frontend::Flavor;
using frontend::Language;

using testutil::TempFile;

std::shared_ptr<llm::ModelClient> make_client(std::size_t concurrency = 2) {
  return std::make_shared<llm::ModelClient>(
      std::make_shared<const llm::SimulatedCoderModel>(), concurrency);
}

std::shared_ptr<ArtifactStore> make_store(const std::string& path) {
  ArtifactStoreConfig config;
  config.path = path;
  config.fingerprint = StoreFingerprint{"persist-test", "sim-coder", 5};
  return std::make_shared<ArtifactStore>(config);
}

frontend::SourceFile sample_file(std::uint64_t seed) {
  return corpus::generate_one("saxpy_offload", Flavor::kOpenACC,
                              Language::kC, seed)
      .file;
}

void expect_same_decision(const JudgeDecision& a, const JudgeDecision& b) {
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.says_valid, b.says_valid);
  EXPECT_EQ(a.prompt, b.prompt);
  EXPECT_EQ(a.completion.text, b.completion.text);
  EXPECT_EQ(a.completion.prompt_tokens, b.completion.prompt_tokens);
  EXPECT_EQ(a.completion.completion_tokens, b.completion.completion_tokens);
  EXPECT_DOUBLE_EQ(a.completion.latency_seconds,
                   b.completion.latency_seconds);
}

// ---------------------------------------------------------------------------
// Judge-verdict persistence
// ---------------------------------------------------------------------------

TEST(JudgePersistenceTest, WarmDecisionIsByteIdenticalToCold) {
  TempFile file("roundtrip");
  const auto source = sample_file(3);
  JudgeDecision cold;
  {
    JudgeCacheConfig config;
    config.store = make_store(file.path());
    const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis,
                     config);
    cold = judge.evaluate(source, nullptr, nullptr, 5);
    EXPECT_FALSE(cold.cached);
    EXPECT_EQ(judge.persist_cache(), 1u);
    ASSERT_TRUE(config.store->save());
  }
  {
    JudgeCacheConfig config;
    config.store = make_store(file.path());
    EXPECT_FALSE(config.store->load_report().cold_start);
    const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis,
                     config);
    const auto warm = judge.evaluate(source, nullptr, nullptr, 5);
    EXPECT_TRUE(warm.cached);
    EXPECT_TRUE(warm.persisted);
    expect_same_decision(warm, cold);
    const auto stats = judge.cache_stats();
    EXPECT_EQ(stats.warm_loaded, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.persisted_hits, 1u);
    EXPECT_EQ(stats.misses, 0u);
  }
}

TEST(JudgePersistenceTest, AgentStyleDecisionsRoundTripWithOutcomes) {
  TempFile file("agent");
  const auto source = sample_file(4);
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled = driver.compile(source);
  const toolchain::Executor executor;
  const auto ran = executor.run(compiled.module);

  JudgeDecision cold;
  {
    JudgeCacheConfig config;
    config.store = make_store(file.path());
    const Llmj judge(make_client(), llm::PromptStyle::kAgentDirect, config);
    cold = judge.evaluate(source, &compiled, &ran, 9);
    judge.persist_cache();
    ASSERT_TRUE(config.store->save());
  }
  JudgeCacheConfig config;
  config.store = make_store(file.path());
  const Llmj judge(make_client(), llm::PromptStyle::kAgentDirect, config);
  const auto warm = judge.evaluate(source, &compiled, &ran, 9);
  EXPECT_TRUE(warm.persisted);
  expect_same_decision(warm, cold);
  // A different seed or outcome still misses: the key covers them.
  EXPECT_FALSE(judge.evaluate(source, &compiled, &ran, 10).cached);
}

TEST(JudgePersistenceTest, OtherStylesRecordsAreNotLoaded) {
  TempFile file("styles");
  const auto source = sample_file(6);
  {
    JudgeCacheConfig config;
    config.store = make_store(file.path());
    const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis,
                     config);
    (void)judge.evaluate(source);
    judge.persist_cache();
    ASSERT_TRUE(config.store->save());
  }
  JudgeCacheConfig config;
  config.store = make_store(file.path());
  // An agent-style judge must not warm-load direct-analysis verdicts.
  const Llmj judge(make_client(), llm::PromptStyle::kAgentDirect, config);
  EXPECT_EQ(judge.cache_stats().warm_loaded, 0u);
}

TEST(JudgePersistenceTest, FingerprintMismatchColdStartsCleanly) {
  TempFile file("fp");
  const auto source = sample_file(7);
  JudgeDecision cold;
  {
    JudgeCacheConfig config;
    config.store = make_store(file.path());
    const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis,
                     config);
    cold = judge.evaluate(source);
    judge.persist_cache();
    ASSERT_TRUE(config.store->save());
  }
  // Same file, different model fingerprint: the records are stale and must
  // not be served — cold start, recompute, same (deterministic) decision.
  ArtifactStoreConfig changed;
  changed.path = file.path();
  changed.fingerprint = StoreFingerprint{"persist-test", "other-model", 5};
  JudgeCacheConfig config;
  config.store = std::make_shared<ArtifactStore>(changed);
  EXPECT_TRUE(config.store->load_report().cold_start);
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis, config);
  EXPECT_EQ(judge.cache_stats().warm_loaded, 0u);
  const auto redone = judge.evaluate(source);
  EXPECT_FALSE(redone.cached);
  EXPECT_FALSE(redone.persisted);
  expect_same_decision(redone, cold);
}

TEST(JudgePersistenceTest, CorruptTailRecoversRemainingRecords) {
  TempFile file("corrupt");
  const auto file_a = sample_file(10);
  const auto file_b = sample_file(11);
  {
    JudgeCacheConfig config;
    config.store = make_store(file.path());
    const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis,
                     config);
    (void)judge.evaluate(file_a);
    (void)judge.evaluate(file_b);
    judge.persist_cache();
    ASSERT_TRUE(config.store->save());
  }
  {
    // Crash-like truncated tail plus binary garbage.
    std::ofstream out(file.path(), std::ios::app);
    out << R"({"ns":"judge","key":"00ff","check":"00ff","f_style":")";
  }
  JudgeCacheConfig config;
  config.store = make_store(file.path());
  EXPECT_FALSE(config.store->load_report().cold_start);
  EXPECT_EQ(config.store->load_report().corrupt_lines, 1u);
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis, config);
  EXPECT_EQ(judge.cache_stats().warm_loaded, 2u);
  EXPECT_TRUE(judge.evaluate(file_a).persisted);
  EXPECT_TRUE(judge.evaluate(file_b).persisted);
}

TEST(JudgePersistenceTest, ConcurrentSaveWhileEvaluating) {
  TempFile file("concurrent");
  JudgeCacheConfig config;
  config.store = make_store(file.path());
  const Llmj judge(make_client(4), llm::PromptStyle::kDirectAnalysis,
                   config);

  std::atomic<bool> stop{false};
  std::thread saver([&judge, &config, &stop] {
    while (!stop.load()) {
      judge.persist_cache();
      ASSERT_TRUE(config.store->save());
    }
  });
  std::vector<std::thread> evaluators;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 3; ++t) {
    evaluators.emplace_back([&judge, &mismatches, t] {
      for (std::uint64_t i = 0; i < 20; ++i) {
        const auto source = sample_file(100 + (t * 20 + i) % 30);
        const auto decision = judge.evaluate(source);
        const auto again = judge.evaluate(source);
        if (again.completion.text != decision.completion.text) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : evaluators) thread.join();
  stop.store(true);
  saver.join();
  EXPECT_EQ(mismatches.load(), 0);

  // The final persisted file must reload cleanly and serve warm hits.
  // (Some generated files can share content, so the unique-key count is
  // what the judge actually computed: its miss counter.)
  judge.persist_cache();
  ASSERT_TRUE(config.store->save());
  const auto unique_keys = judge.cache_stats().misses;
  EXPECT_GE(unique_keys, 25u);
  JudgeCacheConfig reload;
  reload.store = make_store(file.path());
  EXPECT_FALSE(reload.store->load_report().cold_start);
  EXPECT_EQ(reload.store->load_report().corrupt_lines, 0u);
  const Llmj warm(make_client(), llm::PromptStyle::kDirectAnalysis, reload);
  EXPECT_EQ(warm.cache_stats().warm_loaded, unique_keys);
  EXPECT_TRUE(warm.evaluate(sample_file(100)).persisted);
}

TEST(JudgePersistenceTest, PersistCacheWithoutStoreIsANoOp) {
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis);
  (void)judge.evaluate(sample_file(1));
  EXPECT_EQ(judge.persist_cache(), 0u);
}

// ---------------------------------------------------------------------------
// Compile cache
// ---------------------------------------------------------------------------

toolchain::CompilerDriver cached_driver(
    Flavor flavor, const std::shared_ptr<cache::CompileCache>& compile_cache) {
  auto config = flavor == Flavor::kOpenACC ? toolchain::nvc_persona()
                                           : toolchain::clang_persona();
  return toolchain::CompilerDriver(config, compile_cache);
}

TEST(CompileCacheTest, SecondCompileSkipsTheFrontEnd) {
  auto compile_cache =
      std::make_shared<cache::CompileCache>(cache::CompileCacheConfig{},
                                            toolchain::driver_fingerprint(
                                                toolchain::nvc_persona()));
  const auto driver = cached_driver(Flavor::kOpenACC, compile_cache);
  const auto source = sample_file(21);

  const auto first = driver.compile(source);
  EXPECT_FALSE(first.cached);
  const auto second = driver.compile(source);
  EXPECT_TRUE(second.cached);
  EXPECT_FALSE(second.persisted);
  EXPECT_EQ(second.success, first.success);
  EXPECT_EQ(second.return_code, first.return_code);
  EXPECT_EQ(second.stderr_text, first.stderr_text);
  // The lowered module is shared, not recompiled.
  EXPECT_EQ(second.module.get(), first.module.get());
  const auto stats = compile_cache->stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(CompileCacheTest, PersistedCompileSkipsFrontEndAcrossStores) {
  TempFile file("compile");
  const auto source = sample_file(22);
  const auto fingerprint =
      toolchain::driver_fingerprint(toolchain::nvc_persona());
  toolchain::CompileResult cold;
  {
    cache::CompileCacheConfig config;
    config.store = make_store(file.path());
    auto compile_cache =
        std::make_shared<cache::CompileCache>(config, fingerprint);
    const auto driver = cached_driver(Flavor::kOpenACC, compile_cache);
    cold = driver.compile(source);
    EXPECT_EQ(compile_cache->persist(), 1u);
    ASSERT_TRUE(config.store->save());
  }
  cache::CompileCacheConfig config;
  config.store = make_store(file.path());
  auto compile_cache =
      std::make_shared<cache::CompileCache>(config, fingerprint);
  EXPECT_EQ(compile_cache->stats().warm_loaded, 1u);
  const auto driver = cached_driver(Flavor::kOpenACC, compile_cache);
  const auto warm = driver.compile(source);
  EXPECT_TRUE(warm.cached);
  EXPECT_TRUE(warm.persisted);
  EXPECT_EQ(warm.success, cold.success);
  EXPECT_EQ(warm.return_code, cold.return_code);
  EXPECT_EQ(warm.stderr_text, cold.stderr_text);
  EXPECT_EQ(warm.stdout_text, cold.stdout_text);
  ASSERT_EQ(warm.module != nullptr, cold.module != nullptr);
  if (warm.module != nullptr) {
    // The decoded module must behave exactly like the original.
    const toolchain::Executor executor;
    const auto a = executor.run(warm.module);
    const auto b = executor.run(cold.module);
    EXPECT_EQ(a.return_code, b.return_code);
    EXPECT_EQ(a.stdout_text, b.stdout_text);
    EXPECT_EQ(a.steps, b.steps);
  }
  EXPECT_EQ(compile_cache->stats().persisted_hits, 1u);
}

// The memo key is the file *identity* (content + name + language), not the
// content alone: persona diagnostics bake the file name into stderr, and
// the language selects the front-end, so byte-identical content under a
// different name or language must never share a cached result.
TEST(CompileCacheTest, SameContentDifferentNameOrLanguageDoesNotCrossServe) {
  auto compile_cache =
      std::make_shared<cache::CompileCache>(cache::CompileCacheConfig{},
                                            toolchain::driver_fingerprint(
                                                toolchain::nvc_persona()));
  const auto driver = cached_driver(Flavor::kOpenACC, compile_cache);

  frontend::SourceFile alpha;
  alpha.name = "alpha.c";
  alpha.content = "int main() { return undeclared_var; }\n";
  frontend::SourceFile beta = alpha;
  beta.name = "beta.c";

  const auto first = driver.compile(alpha);
  const auto second = driver.compile(beta);
  EXPECT_FALSE(second.cached);  // different name: a distinct identity
  EXPECT_NE(second.stderr_text.find("beta.c"), std::string::npos)
      << "cached diagnostics leaked another file's name: "
      << second.stderr_text;
  EXPECT_EQ(first.stderr_text.find("beta.c"), std::string::npos);

  // Same bytes re-labelled as Fortran select a different front-end and
  // must also miss (SourceFile::language is part of the identity).
  frontend::SourceFile fortran = alpha;
  fortran.language = Language::kFortran;
  EXPECT_FALSE(driver.compile(fortran).cached);

  // The true repeat still hits.
  EXPECT_TRUE(driver.compile(alpha).cached);
}

TEST(CompileCacheTest, DifferentPersonaNeverCrossServes) {
  TempFile file("persona");
  const auto source = sample_file(23);
  {
    cache::CompileCacheConfig config;
    config.store = make_store(file.path());
    auto compile_cache = std::make_shared<cache::CompileCache>(
        config, toolchain::driver_fingerprint(toolchain::nvc_persona()));
    const auto driver = cached_driver(Flavor::kOpenACC, compile_cache);
    (void)driver.compile(source);
    compile_cache->persist();
    ASSERT_TRUE(config.store->save());
  }
  cache::CompileCacheConfig config;
  config.store = make_store(file.path());
  // clang persona: different fingerprint, so the nvc record must not load.
  auto compile_cache = std::make_shared<cache::CompileCache>(
      config, toolchain::driver_fingerprint(toolchain::clang_persona()));
  EXPECT_EQ(compile_cache->stats().warm_loaded, 0u);
}

// ---------------------------------------------------------------------------
// Pipeline integration: warm-start counters
// ---------------------------------------------------------------------------

std::vector<frontend::SourceFile> small_batch(std::size_t count) {
  std::vector<frontend::SourceFile> files;
  for (std::size_t i = 0; i < count; ++i) {
    files.push_back(sample_file(40 + i));
  }
  return files;
}

TEST(PipelinePersistenceTest, WarmRunServesEverythingFromTheStore) {
  TempFile file("pipeline");
  const auto files = small_batch(12);
  const auto fingerprint =
      toolchain::driver_fingerprint(toolchain::nvc_persona());

  pipeline::PipelineConfig pipe_config;
  pipe_config.mode = pipeline::PipelineMode::kRecordAll;
  pipe_config.judge_seed = 3;

  pipeline::PipelineResult cold;
  {
    auto store = make_store(file.path());
    JudgeCacheConfig judge_config;
    judge_config.store = store;
    auto judge = std::make_shared<const Llmj>(
        make_client(), llm::PromptStyle::kAgentDirect, judge_config);
    cache::CompileCacheConfig cc;
    cc.store = store;
    auto compile_cache =
        std::make_shared<cache::CompileCache>(cc, fingerprint);
    const pipeline::ValidationPipeline pipe(
        toolchain::CompilerDriver(toolchain::nvc_persona(), compile_cache),
        toolchain::Executor(), judge, pipe_config);
    cold = pipe.run(files);
    EXPECT_EQ(cold.judge_persisted_hits, 0u);
    EXPECT_GT(cold.judge_gpu_seconds, 0.0);
    judge->persist_cache();
    compile_cache->persist();
    ASSERT_TRUE(store->save());
  }

  auto store = make_store(file.path());
  JudgeCacheConfig judge_config;
  judge_config.store = store;
  auto judge = std::make_shared<const Llmj>(
      make_client(), llm::PromptStyle::kAgentDirect, judge_config);
  cache::CompileCacheConfig cc;
  cc.store = store;
  auto compile_cache = std::make_shared<cache::CompileCache>(cc, fingerprint);
  const pipeline::ValidationPipeline pipe(
      toolchain::CompilerDriver(toolchain::nvc_persona(), compile_cache),
      toolchain::Executor(), judge, pipe_config);
  const auto warm = pipe.run(files);

  // Every judged file is a persisted hit; no simulated GPU time is spent.
  EXPECT_EQ(warm.judge_persisted_hits, warm.judge_stage.processed);
  EXPECT_EQ(warm.judge_cache_hits, warm.judge_stage.processed);
  EXPECT_EQ(warm.judge_cache_misses, 0u);
  EXPECT_DOUBLE_EQ(warm.judge_gpu_seconds, 0.0);
  // Every compile was served from the persisted compile cache.
  EXPECT_EQ(warm.compile_cache_hits, files.size());
  EXPECT_EQ(warm.compile_persisted_hits, files.size());

  // Verdicts are byte-identical to the cold run's.
  ASSERT_EQ(warm.records.size(), cold.records.size());
  for (std::size_t i = 0; i < warm.records.size(); ++i) {
    EXPECT_EQ(warm.records[i].verdict, cold.records[i].verdict) << i;
    EXPECT_EQ(warm.records[i].judge_says_valid,
              cold.records[i].judge_says_valid)
        << i;
    EXPECT_EQ(warm.records[i].pipeline_says_valid,
              cold.records[i].pipeline_says_valid)
        << i;
    EXPECT_TRUE(warm.records[i].judge_persisted) << i;
    EXPECT_TRUE(warm.records[i].compile_cached) << i;
  }
}

}  // namespace
}  // namespace llm4vv::judge
