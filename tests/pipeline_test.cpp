#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "corpus/generator.hpp"
#include "pipeline/validation_pipeline.hpp"
#include "probing/prober.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::pipeline {
namespace {

using frontend::Flavor;

probing::ProbedSuite probed_batch(std::size_t per_issue,
                                  std::size_t valid_count) {
  const auto suite = corpus::generate_suite(testutil::corpus_config(
      Flavor::kOpenACC, per_issue * 5 + valid_count + 32, 808));
  probing::ProbingConfig config;
  config.issue_counts = {per_issue, per_issue, per_issue, per_issue,
                         per_issue, valid_count};
  config.seed = 909;
  return probing::probe_suite(suite, config);
}

std::vector<frontend::SourceFile> files_of(
    const probing::ProbedSuite& probed) {
  std::vector<frontend::SourceFile> files;
  for (const auto& pf : probed.files) files.push_back(pf.file);
  return files;
}

ValidationPipeline make_pipeline(PipelineMode mode, std::size_t workers,
                                 std::shared_ptr<llm::ModelClient> client) {
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect);
  PipelineConfig config;
  config.mode = mode;
  config.compile_workers = workers;
  config.execute_workers = workers;
  config.judge_workers = workers;
  return ValidationPipeline(testutil::clean_driver(Flavor::kOpenACC),
                            toolchain::Executor(), judge, config);
}

TEST(PipelineTest, EmptyInputYieldsEmptyResult) {
  const auto pipe = make_pipeline(PipelineMode::kRecordAll, 2,
                                  core::make_simulated_client(2));
  const auto result = pipe.run({});
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.compile_stage.processed, 0u);
}

TEST(PipelineTest, NullJudgeThrows) {
  PipelineConfig config;
  EXPECT_THROW(ValidationPipeline(testutil::clean_driver(Flavor::kOpenACC),
                                  toolchain::Executor(), nullptr, config),
               std::invalid_argument);
}

TEST(PipelineTest, RecordAllProcessesEveryFileInEveryStage) {
  const auto probed = probed_batch(4, 20);
  const auto files = files_of(probed);
  const auto pipe = make_pipeline(PipelineMode::kRecordAll, 2,
                                  core::make_simulated_client(2));
  const auto result = pipe.run(files);
  EXPECT_EQ(result.compile_stage.processed, files.size());
  EXPECT_EQ(result.execute_stage.processed, files.size());
  EXPECT_EQ(result.judge_stage.processed, files.size());
  for (const auto& record : result.records) {
    EXPECT_TRUE(record.judged);
  }
}

TEST(PipelineTest, FilterEarlySkipsDownstreamStages) {
  const auto probed = probed_batch(4, 20);
  const auto files = files_of(probed);
  const auto pipe = make_pipeline(PipelineMode::kFilterEarly, 2,
                                  core::make_simulated_client(2));
  const auto result = pipe.run(files);
  EXPECT_EQ(result.compile_stage.processed, files.size());
  EXPECT_LT(result.execute_stage.processed, files.size());
  EXPECT_EQ(result.execute_stage.processed,
            result.compile_stage.processed -
                result.compile_stage.rejected);
  for (const auto& record : result.records) {
    if (!record.compiled) {
      EXPECT_FALSE(record.judged);
      EXPECT_FALSE(record.pipeline_says_valid);
      EXPECT_EQ(record.judge_gpu_seconds, 0.0);
    }
    if (record.compiled && !record.executed) {
      EXPECT_FALSE(record.judged);
    }
  }
}

TEST(PipelineTest, RecordsKeepInputOrder) {
  const auto probed = probed_batch(3, 12);
  const auto files = files_of(probed);
  const auto pipe = make_pipeline(PipelineMode::kRecordAll, 3,
                                  core::make_simulated_client(3));
  const auto result = pipe.run(files);
  ASSERT_EQ(result.records.size(), files.size());
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    EXPECT_EQ(result.records[i].index, i);
  }
}

TEST(PipelineTest, PipelineVerdictIsConjunctionOfStages) {
  const auto probed = probed_batch(4, 16);
  const auto files = files_of(probed);
  const auto pipe = make_pipeline(PipelineMode::kRecordAll, 2,
                                  core::make_simulated_client(2));
  const auto result = pipe.run(files);
  for (const auto& record : result.records) {
    EXPECT_EQ(record.pipeline_says_valid,
              record.compiled && record.executed && record.judged &&
                  record.judge_says_valid);
  }
}

TEST(PipelineTest, RecordAllMatchesManualStageComposition) {
  // The pipeline must agree with running the three tools by hand.
  const auto probed = probed_batch(3, 10);
  const auto files = files_of(probed);
  auto client = core::make_simulated_client(1);
  const auto pipe = make_pipeline(PipelineMode::kRecordAll, 1, client);
  const auto result = pipe.run(files);

  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const toolchain::Executor executor;
  const judge::Llmj judge(client, llm::PromptStyle::kAgentDirect);
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto compiled = driver.compile(files[i]);
    const auto ran = executor.run(compiled.module);
    const auto decision = judge.evaluate(files[i], &compiled, &ran, 0);
    EXPECT_EQ(result.records[i].compiled, compiled.success) << i;
    EXPECT_EQ(result.records[i].executed, ran.passed()) << i;
    EXPECT_EQ(result.records[i].judge_says_valid, decision.says_valid) << i;
  }
}

TEST(PipelineTest, VerdictsIndependentOfWorkerCount) {
  const auto probed = probed_batch(3, 12);
  const auto files = files_of(probed);
  const auto run_with = [&](std::size_t workers) {
    const auto pipe = make_pipeline(PipelineMode::kRecordAll, workers,
                                    core::make_simulated_client(workers));
    return pipe.run(files);
  };
  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i].pipeline_says_valid,
              parallel.records[i].pipeline_says_valid)
        << i;
    EXPECT_EQ(serial.records[i].judge_says_valid,
              parallel.records[i].judge_says_valid)
        << i;
  }
}

TEST(PipelineTest, FilterEarlySavesSimulatedGpuTime) {
  const auto probed = probed_batch(6, 10);  // invalid-heavy batch
  const auto files = files_of(probed);
  const auto all = make_pipeline(PipelineMode::kRecordAll, 2,
                                 core::make_simulated_client(2))
                       .run(files);
  const auto filtered = make_pipeline(PipelineMode::kFilterEarly, 2,
                                      core::make_simulated_client(2))
                            .run(files);
  EXPECT_LT(filtered.judge_gpu_seconds, all.judge_gpu_seconds * 0.8);
  EXPECT_GT(all.judge_gpu_seconds, 0.0);
}

TEST(PipelineTest, FilterAndRecordAllAgreeOnFinalVerdicts) {
  // Early filtering must not change the pipeline's verdict, only its cost.
  const auto probed = probed_batch(4, 14);
  const auto files = files_of(probed);
  const auto all = make_pipeline(PipelineMode::kRecordAll, 2,
                                 core::make_simulated_client(2))
                       .run(files);
  const auto filtered = make_pipeline(PipelineMode::kFilterEarly, 2,
                                      core::make_simulated_client(2))
                            .run(files);
  for (std::size_t i = 0; i < files.size(); ++i) {
    EXPECT_EQ(all.records[i].pipeline_says_valid,
              filtered.records[i].pipeline_says_valid)
        << i;
  }
}

TEST(PipelineTest, DuplicateFilesHitTheJudgeCache) {
  const auto probed = probed_batch(2, 10);
  auto files = files_of(probed);
  const std::size_t unique = files.size();
  // Duplicate the whole batch: every copy's judge decision is memoizable.
  // One judge worker keeps the original-before-copy order deterministic
  // (two workers could race a pair into two concurrent misses).
  const std::vector<frontend::SourceFile> originals(files);
  files.insert(files.end(), originals.begin(), originals.end());
  const auto pipe = make_pipeline(PipelineMode::kRecordAll, 1,
                                  core::make_simulated_client(1));
  const auto result = pipe.run(files);
  EXPECT_EQ(result.judge_cache_hits + result.judge_cache_misses,
            result.judge_stage.processed);
  EXPECT_GE(result.judge_cache_hits, unique);  // each copy hits
  for (std::size_t i = 0; i < unique; ++i) {
    EXPECT_EQ(result.records[i].judge_says_valid,
              result.records[i + unique].judge_says_valid)
        << i;
    if (result.records[i + unique].judge_cached) {
      EXPECT_EQ(result.records[i + unique].judge_gpu_seconds, 0.0);
    }
  }
  // GPU seconds are only spent on misses; a fully duplicated batch costs
  // no more than its unique half plus scheduling jitter.
  EXPECT_GT(result.judge_gpu_seconds, 0.0);
}

TEST(PipelineTest, NormalRunsDropNothing) {
  const auto probed = probed_batch(3, 10);
  const auto files = files_of(probed);
  const auto pipe = make_pipeline(PipelineMode::kFilterEarly, 2,
                                  core::make_simulated_client(2));
  const auto result = pipe.run(files);
  EXPECT_EQ(result.dropped_items, 0u);
  for (const auto& record : result.records) {
    EXPECT_FALSE(record.dropped);
  }
}

TEST(PipelineTest, CacheCountersZeroWhenJudgeCacheDisabled) {
  const auto probed = probed_batch(2, 8);
  const auto files = files_of(probed);
  judge::JudgeCacheConfig off;
  off.enabled = false;
  auto judge = std::make_shared<const judge::Llmj>(
      core::make_simulated_client(2), llm::PromptStyle::kAgentDirect, off);
  PipelineConfig config;
  config.mode = PipelineMode::kRecordAll;
  const ValidationPipeline pipe(testutil::clean_driver(Flavor::kOpenACC),
                                toolchain::Executor(), judge, config);
  const auto result = pipe.run(files);
  EXPECT_EQ(result.judge_cache_hits, 0u);
  EXPECT_EQ(result.judge_cache_misses, result.judge_stage.processed);
  for (const auto& record : result.records) {
    EXPECT_FALSE(record.judge_cached);
  }
}

ValidationPipeline make_batched_pipeline(std::size_t judge_batch_size,
                                         std::shared_ptr<llm::ModelClient>
                                             client) {
  // Cache off so every judged file is a genuine model submission: the GPU
  // accounting then isolates the batched pass pricing. Many producer
  // workers feed one judge worker, so the judge queue accumulates and the
  // popped chunks actually fill their batches.
  judge::JudgeCacheConfig off;
  off.enabled = false;
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect, off);
  PipelineConfig config;
  config.mode = PipelineMode::kRecordAll;
  config.compile_workers = 4;
  config.execute_workers = 4;
  config.judge_workers = 1;
  config.judge_batch_size = judge_batch_size;
  return ValidationPipeline(testutil::clean_driver(Flavor::kOpenACC),
                            toolchain::Executor(), judge, config);
}

TEST(PipelineTest, BatchedJudgingMatchesSequentialVerdicts) {
  const auto probed = probed_batch(4, 20);
  const auto files = files_of(probed);
  const auto sequential =
      make_batched_pipeline(1, core::make_simulated_client(4)).run(files);
  const auto batched =
      make_batched_pipeline(8, core::make_simulated_client(4)).run(files);
  ASSERT_EQ(sequential.records.size(), batched.records.size());
  for (std::size_t i = 0; i < sequential.records.size(); ++i) {
    EXPECT_EQ(sequential.records[i].verdict, batched.records[i].verdict)
        << i;
    EXPECT_EQ(sequential.records[i].judge_says_valid,
              batched.records[i].judge_says_valid)
        << i;
    EXPECT_EQ(sequential.records[i].pipeline_says_valid,
              batched.records[i].pipeline_says_valid)
        << i;
  }
}

TEST(PipelineTest, BatchedJudgingFillsBatchesAndSavesGpuSeconds) {
  const auto probed = probed_batch(8, 60);  // 100 files through one judge
  const auto files = files_of(probed);
  const auto sequential =
      make_batched_pipeline(1, core::make_simulated_client(4)).run(files);
  const auto batched =
      make_batched_pipeline(8, core::make_simulated_client(4)).run(files);

  // The sequential path never batches.
  EXPECT_EQ(sequential.judge_batches, 0u);
  EXPECT_EQ(sequential.judge_batch_occupancy, 0.0);

  // The batched path actually filled forward passes...
  EXPECT_GT(batched.judge_batches, 0u);
  EXPECT_GT(batched.judge_batch_occupancy, 1.0);
  EXPECT_GE(batched.judge_max_batch, 2u);
  EXPECT_EQ(batched.judge_batched_prompts,
            static_cast<std::uint64_t>(batched.judge_stage.processed));
  // ...and amortizing prefill across them costs measurably fewer simulated
  // GPU seconds than one call per file.
  EXPECT_LT(batched.judge_gpu_seconds, sequential.judge_gpu_seconds * 0.8);
  EXPECT_GT(batched.judge_gpu_seconds, 0.0);
}

TEST(PipelineTest, JudgeBatchSizeZeroIsRejectedAtConstruction) {
  // Regression: judge_batch_size = 0 used to be silently clamped inside
  // the judge stage; it must now fail loudly at construction time.
  auto judge = std::make_shared<const judge::Llmj>(
      core::make_simulated_client(1), llm::PromptStyle::kAgentDirect);
  PipelineConfig config;
  config.judge_batch_size = 0;
  EXPECT_THROW(ValidationPipeline(testutil::clean_driver(Flavor::kOpenACC),
                                  toolchain::Executor(), judge, config),
               std::invalid_argument);
}

TEST(PipelineTest, AdaptiveWindowVerdictsMatchSequentialAndBatchesForm) {
  // The submit-then-drain judge stage with a nonzero batcher window must
  // produce byte-identical verdicts to the sequential paper path, while
  // actually forming batched forward passes.
  const auto probed = probed_batch(8, 60);  // 100 files through one judge
  const auto files = files_of(probed);
  const auto sequential =
      make_batched_pipeline(1, core::make_simulated_client(4)).run(files);

  llm::BatcherConfig batcher;
  batcher.max_batch = 8;
  batcher.window_us = 1500;
  const auto adaptive =
      make_batched_pipeline(8, core::make_simulated_client(4, batcher))
          .run(files);

  ASSERT_EQ(sequential.records.size(), adaptive.records.size());
  for (std::size_t i = 0; i < sequential.records.size(); ++i) {
    EXPECT_EQ(sequential.records[i].verdict, adaptive.records[i].verdict)
        << i;
    EXPECT_EQ(sequential.records[i].judge_says_valid,
              adaptive.records[i].judge_says_valid)
        << i;
  }
  EXPECT_GT(adaptive.judge_formed_batches, 0u);
  EXPECT_GT(adaptive.judge_batch_occupancy, 1.0);
  // The flush reasons must be adaptive ones: nothing flushes "immediately"
  // when a window is configured.
  EXPECT_EQ(adaptive.judge_flush_immediate, 0u);
  EXPECT_GT(adaptive.judge_flush_full + adaptive.judge_flush_window, 0u);
  // Amortized passes cost no more simulated GPU time than sequential.
  EXPECT_LT(adaptive.judge_gpu_seconds, sequential.judge_gpu_seconds);
}

TEST(PipelineTest, OccupancyIsComputedFromFormedBatchesNotPoppedChunks) {
  // Satellite regression: judge_batch_occupancy must follow the batcher's
  // formed passes. With the batcher capped below judge_batch_size, the
  // popped-chunk groups (up to 8) are split into passes of at most 4 — the
  // reported occupancy must be the formed-pass number (<= cap), computed
  // exactly from the client's counters, even though the old popped-chunk
  // definition could read higher.
  const auto probed = probed_batch(8, 60);
  const auto files = files_of(probed);
  llm::BatcherConfig batcher;
  batcher.max_batch = 4;
  batcher.window_us = 0;
  auto client = core::make_simulated_client(4, batcher);
  const auto result = make_batched_pipeline(8, client).run(files);

  const auto stats = client->stats();
  ASSERT_GT(stats.batches, 0u);
  EXPECT_DOUBLE_EQ(result.judge_batch_occupancy,
                   static_cast<double>(stats.batched_prompts) /
                       static_cast<double>(stats.batches));
  EXPECT_LE(result.judge_batch_occupancy, 4.0);  // capped by the batcher
  EXPECT_EQ(result.judge_formed_batches, stats.formed_batches);
  // The popped-chunk counters still tell the worker-side story and may
  // exceed the cap (a group of up to 8 submitted at once).
  EXPECT_GE(result.judge_max_batch, result.judge_batch_occupancy);
  // Histogram and telemetry flowed through.
  std::uint64_t hist_total = 0;
  for (const auto bucket : result.judge_occupancy_hist) hist_total += bucket;
  EXPECT_EQ(hist_total, result.judge_formed_batches);
  EXPECT_GT(result.judge_queue_depth_peak, 0u);
}

TEST(PipelineTest, RepeatedAdaptiveRunsLeaveNoStrandedState) {
  // Shutdown/cancellation stress at the pipeline level: repeated runs over
  // a windowed batcher (flusher thread active, futures in flight inside
  // every run) must drain completely every time — and afterwards the judge
  // must answer instantly from a fully published cache, proving no claim
  // was left in flight.
  const auto probed = probed_batch(2, 10);
  const auto files = files_of(probed);
  llm::BatcherConfig batcher;
  batcher.max_batch = 4;
  batcher.window_us = 500;
  auto client = core::make_simulated_client(4, batcher);
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect);
  PipelineConfig config;
  config.mode = PipelineMode::kRecordAll;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 4;
  config.judge_batch_size = 4;
  const ValidationPipeline pipe(testutil::clean_driver(Flavor::kOpenACC),
                                toolchain::Executor(), judge, config);
  const auto first = pipe.run(files);
  for (const auto& record : first.records) EXPECT_TRUE(record.judged);
  const auto second = pipe.run(files);
  for (std::size_t i = 0; i < files.size(); ++i) {
    EXPECT_EQ(second.records[i].judge_says_valid,
              first.records[i].judge_says_valid)
        << i;
    EXPECT_TRUE(second.records[i].judge_cached) << i;  // nothing stranded
  }
  EXPECT_EQ(client->pending_depth(), 0u);
}

TEST(PipelineTest, StageStatsAreConsistent) {
  const auto probed = probed_batch(4, 16);
  const auto files = files_of(probed);
  const auto pipe = make_pipeline(PipelineMode::kFilterEarly, 2,
                                  core::make_simulated_client(2));
  const auto result = pipe.run(files);
  EXPECT_LE(result.compile_stage.rejected, result.compile_stage.processed);
  EXPECT_EQ(result.judge_stage.processed,
            result.execute_stage.processed - result.execute_stage.rejected);
  EXPECT_GE(result.wall_seconds, 0.0);
  EXPECT_GE(result.compile_stage.busy_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// PR 5: execute-stage telemetry (dispatch core, queue shards, steal counts)
// and shard-count independence of results.
// ---------------------------------------------------------------------------

TEST(PipelineTest, ExecuteTelemetryReportsDispatchAndShards) {
  const auto probed = probed_batch(2, 8);
  const auto files = files_of(probed);
  const auto pipe = make_pipeline(PipelineMode::kRecordAll, 2,
                                  core::make_simulated_client(2));
  const auto result = pipe.run(files);
  EXPECT_EQ(result.execute_dispatch,
            vm::dispatch_mode_name(vm::default_dispatch_mode()));
  EXPECT_GE(result.queue_shards, 1u);
  EXPECT_LE(result.queue_shards, 8u);
}

TEST(PipelineTest, ExplicitQueueShardCountIsHonored) {
  const auto probed = probed_batch(2, 8);
  const auto files = files_of(probed);
  auto judge = std::make_shared<const judge::Llmj>(
      core::make_simulated_client(2), llm::PromptStyle::kAgentDirect);
  PipelineConfig config;
  config.mode = PipelineMode::kRecordAll;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 2;
  config.queue_shards = 4;
  const ValidationPipeline pipe(testutil::clean_driver(Flavor::kOpenACC),
                                toolchain::Executor(), judge, config);
  const auto result = pipe.run(files);
  EXPECT_EQ(result.queue_shards, 4u);
  // Sharded hand-off must not lose or duplicate work.
  EXPECT_EQ(result.compile_stage.processed, files.size());
  EXPECT_EQ(result.execute_stage.processed, files.size());
  EXPECT_EQ(result.dropped_items, 0u);
}

TEST(PipelineTest, VerdictsIndependentOfQueueSharding) {
  const auto probed = probed_batch(3, 12);
  const auto files = files_of(probed);
  std::vector<PipelineResult> results;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    auto judge = std::make_shared<const judge::Llmj>(
        core::make_simulated_client(2), llm::PromptStyle::kAgentDirect);
    PipelineConfig config;
    config.mode = PipelineMode::kRecordAll;
    config.compile_workers = 2;
    config.execute_workers = 2;
    config.judge_workers = 2;
    config.queue_shards = shards;
    const ValidationPipeline pipe(testutil::clean_driver(Flavor::kOpenACC),
                                  toolchain::Executor(), judge, config);
    results.push_back(pipe.run(files));
  }
  ASSERT_EQ(results[0].records.size(), results[1].records.size());
  for (std::size_t i = 0; i < results[0].records.size(); ++i) {
    const auto& a = results[0].records[i];
    const auto& b = results[1].records[i];
    EXPECT_EQ(a.compiled, b.compiled) << i;
    EXPECT_EQ(a.executed, b.executed) << i;
    EXPECT_EQ(a.exec_rc, b.exec_rc) << i;
    EXPECT_EQ(a.judged, b.judged) << i;
    EXPECT_EQ(a.verdict, b.verdict) << i;
    EXPECT_EQ(a.pipeline_says_valid, b.pipeline_says_valid) << i;
  }
}

TEST(PipelineTest, ReferenceDispatchExecutorMatchesFastCore) {
  const auto probed = probed_batch(3, 12);
  const auto files = files_of(probed);
  std::vector<PipelineResult> results;
  for (const auto mode :
       {vm::default_dispatch_mode(), vm::DispatchMode::kReference}) {
    auto judge = std::make_shared<const judge::Llmj>(
        core::make_simulated_client(2), llm::PromptStyle::kAgentDirect);
    PipelineConfig config;
    config.mode = PipelineMode::kRecordAll;
    config.compile_workers = 2;
    config.execute_workers = 2;
    config.judge_workers = 2;
    const ValidationPipeline pipe(testutil::clean_driver(Flavor::kOpenACC),
                                  toolchain::Executor({}, mode), judge,
                                  config);
    results.push_back(pipe.run(files));
  }
  EXPECT_EQ(results[1].execute_dispatch, "reference");
  ASSERT_EQ(results[0].records.size(), results[1].records.size());
  for (std::size_t i = 0; i < results[0].records.size(); ++i) {
    EXPECT_EQ(results[0].records[i].executed, results[1].records[i].executed)
        << i;
    EXPECT_EQ(results[0].records[i].exec_rc, results[1].records[i].exec_rc)
        << i;
    EXPECT_EQ(results[0].records[i].pipeline_says_valid,
              results[1].records[i].pipeline_says_valid)
        << i;
  }
}

}  // namespace
}  // namespace llm4vv::pipeline
