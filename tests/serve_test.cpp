// serve/ subsystem coverage: protocol round-trips, deterministic admission
// (token bucket, quotas), weighted fair scheduling, end-to-end verdicts
// over a real loopback socket, and the graceful-drain invariant — every
// accepted job gets exactly one terminal response and the tenant
// accounting balances to zero in-flight. Runs under the sanitizer ctest
// label (TSan leg), so thread counts stay modest.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/experiments.hpp"
#include "corpus/generator.hpp"
#include "judge/judge.hpp"
#include "obs/registry.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/server.hpp"
#include "serve/tenancy.hpp"
#include "toolchain/compiler.hpp"
#include "toolchain/executor.hpp"

namespace llm4vv::serve {
namespace {

frontend::SourceFile sample_file(std::uint64_t seed) {
  return corpus::generate_one("saxpy_offload", frontend::Flavor::kOpenACC,
                              frontend::Language::kC, seed)
      .file;
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ServeProtocolTest, RequestRoundTrips) {
  const Request hello = parse_request(encode_hello("gold-7"));
  EXPECT_EQ(hello.op, RequestOp::kHello);
  EXPECT_EQ(hello.tenant, "gold-7");

  const auto file = sample_file(3);
  const Request submit = parse_request(encode_submit(42, file));
  ASSERT_EQ(submit.op, RequestOp::kSubmit);
  EXPECT_EQ(submit.id, 42u);
  EXPECT_EQ(submit.file.name, file.name);
  EXPECT_EQ(submit.file.language, file.language);
  EXPECT_EQ(submit.file.flavor, file.flavor);
  EXPECT_EQ(submit.file.content, file.content);

  EXPECT_EQ(parse_request(encode_ping()).op, RequestOp::kPing);
  EXPECT_EQ(parse_request(encode_stats_request()).op, RequestOp::kStats);
  EXPECT_EQ(parse_request(encode_shutdown()).op, RequestOp::kShutdown);
}

TEST(ServeProtocolTest, MalformedRequestsAreInvalidNotThrown) {
  EXPECT_EQ(parse_request("not json").op, RequestOp::kInvalid);
  EXPECT_EQ(parse_request("{}").op, RequestOp::kInvalid);
  EXPECT_EQ(parse_request(R"({"op":"warp"})").op, RequestOp::kInvalid);
  // hello with a tenant name that would be illegal as a metric segment
  EXPECT_EQ(parse_request(R"({"op":"hello","tenant":"a b"})").op,
            RequestOp::kInvalid);
  // submit id must be a non-negative integer
  EXPECT_EQ(parse_request(
                R"({"op":"submit","id":-1,"language":"c","flavor":"openacc"})")
                .op,
            RequestOp::kInvalid);
  EXPECT_EQ(parse_request(
                R"({"op":"submit","id":1.5,"language":"c","flavor":"openacc"})")
                .op,
            RequestOp::kInvalid);
  EXPECT_EQ(parse_request(
                R"({"op":"submit","id":1,"language":"rust","flavor":"openacc"})")
                .op,
            RequestOp::kInvalid);
  for (const auto& request :
       {parse_request("not json"), parse_request(R"({"op":"warp"})")}) {
    EXPECT_FALSE(request.error.empty());
  }
}

TEST(ServeProtocolTest, ResponseRoundTrips) {
  const Response verdict =
      parse_response(encode_verdict(7, "valid", true, true, true, false,
                                    12.5, 31000));
  EXPECT_EQ(verdict.type, ResponseType::kVerdict);
  EXPECT_TRUE(verdict.terminal());
  EXPECT_TRUE(verdict.has_id);
  EXPECT_EQ(verdict.id, 7u);
  EXPECT_EQ(verdict.verdict, "valid");
  EXPECT_TRUE(verdict.judge_valid);
  EXPECT_TRUE(verdict.compiled);
  EXPECT_TRUE(verdict.executed);
  EXPECT_FALSE(verdict.cached);
  EXPECT_DOUBLE_EQ(verdict.gpu_seconds, 12.5);
  EXPECT_EQ(verdict.latency_us, 31000u);

  const Response shed = parse_response(encode_shed(9, "rate_limit"));
  EXPECT_EQ(shed.type, ResponseType::kShed);
  EXPECT_TRUE(shed.terminal());
  EXPECT_EQ(shed.id, 9u);
  EXPECT_EQ(shed.reason, "rate_limit");

  const Response error = parse_response(encode_error(4, "boom", 17));
  EXPECT_EQ(error.type, ResponseType::kError);
  EXPECT_TRUE(error.terminal());
  EXPECT_TRUE(error.has_id);
  EXPECT_EQ(error.id, 4u);

  // A line-level protocol error carries NO id: it must never be mistaken
  // for some job's terminal response.
  const Response protocol_error =
      parse_response(encode_protocol_error("bad line"));
  EXPECT_EQ(protocol_error.type, ResponseType::kError);
  EXPECT_FALSE(protocol_error.has_id);

  EXPECT_EQ(parse_response(encode_hello_ok("t")).type,
            ResponseType::kHelloOk);
  EXPECT_EQ(parse_response(encode_pong()).type, ResponseType::kPong);
  EXPECT_EQ(parse_response(encode_draining()).type, ResponseType::kDraining);
  EXPECT_EQ(parse_response(encode_bye()).type, ResponseType::kBye);
  for (const auto& response :
       {parse_response(encode_pong()), parse_response(encode_draining())}) {
    EXPECT_FALSE(response.terminal());
  }
  EXPECT_EQ(parse_response("garbage").type, ResponseType::kInvalid);
}

TEST(ServeProtocolTest, TenantNameValidation) {
  EXPECT_TRUE(valid_tenant_name("team-a.prod_7"));
  EXPECT_FALSE(valid_tenant_name(""));
  EXPECT_FALSE(valid_tenant_name("has space"));
  EXPECT_FALSE(valid_tenant_name("quote\"d"));
  EXPECT_FALSE(valid_tenant_name(std::string(65, 'x')));
}

// ---------------------------------------------------------------------------
// Admission (token bucket + tenant table)

TEST(ServeTenancyTest, TokenBucketIsDeterministicUnderExplicitClock) {
  TokenBucket bucket(/*rate_per_sec=*/2.0, /*burst=*/2.0);
  // Starts full: two immediate takes, then empty.
  EXPECT_TRUE(bucket.try_take(1'000'000));
  EXPECT_TRUE(bucket.try_take(1'000'000));
  EXPECT_FALSE(bucket.try_take(1'000'000));
  // 0.25 s at 2/s refills half a token: still denied.
  EXPECT_FALSE(bucket.try_take(1'250'000));
  // Another 0.25 s completes the token.
  EXPECT_TRUE(bucket.try_take(1'500'000));
  EXPECT_FALSE(bucket.try_take(1'500'000));
  // Refill is capped at burst: a long gap buys 2 tokens, not 20.
  EXPECT_TRUE(bucket.try_take(11'500'000));
  EXPECT_TRUE(bucket.try_take(11'500'000));
  EXPECT_FALSE(bucket.try_take(11'500'000));
}

TEST(ServeTenancyTest, ZeroRateNeverLimits) {
  TokenBucket bucket(0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(0));
}

TEST(ServeTenancyTest, QuotaShedsBeforeTokenSpend) {
  TenantConfig config;
  config.rate_per_sec = 1000.0;
  config.burst = 2.0;
  config.max_in_flight = 1;
  TenantTable table(config);
  EXPECT_EQ(table.try_admit("t", 0), Admission::kAdmit);
  // Quota (1 in flight) refuses before the bucket is consulted, so the
  // remaining token survives the refusal...
  EXPECT_EQ(table.try_admit("t", 0), Admission::kShedQuota);
  table.complete("t", true, 50);
  // ...and is still available once the quota slot frees up.
  EXPECT_EQ(table.try_admit("t", 0), Admission::kAdmit);
  const TenantStats stats = table.stats("t");
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.shed_quota, 1u);
  EXPECT_EQ(stats.in_flight, 1u);
}

TEST(ServeTenancyTest, AccountingInvariantsHoldThroughEveryTransition) {
  TenantTable table{TenantConfig{}};
  EXPECT_EQ(table.try_admit("t", 0), Admission::kAdmit);
  EXPECT_EQ(table.try_admit("t", 0), Admission::kAdmit);
  EXPECT_EQ(table.try_admit("t", 0), Admission::kAdmit);
  table.record_shed_draining("t");
  // One admitted job failed to schedule: accepted rolls back to shed.
  table.record_post_admit_shed("t", ShedReason::kQueueFull);
  table.complete("t", true, 150);
  table.complete("t", false, 2'000'000);
  const TenantStats stats = table.stats("t");
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.submitted, stats.accepted + stats.shed_total());
  EXPECT_EQ(stats.accepted,
            stats.completed_ok + stats.completed_error + stats.in_flight);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.shed_queue, 1u);
  EXPECT_EQ(stats.shed_draining, 1u);
  EXPECT_EQ(stats.completed_ok, 1u);
  EXPECT_EQ(stats.completed_error, 1u);
  EXPECT_EQ(stats.in_flight, 0u);
  // Latency histogram: 150 µs lands below 1 ms, 2 s in the overflow.
  EXPECT_EQ(stats.latency_hist[1], 1u);
  EXPECT_EQ(stats.latency_hist[TenantStats::kLatencyBuckets - 1], 1u);
}

// ---------------------------------------------------------------------------
// Weighted fair scheduler

ServeJob job_for(const std::string& tenant, std::uint64_t seq) {
  ServeJob job;
  job.seq = seq;
  job.request_id = seq;
  job.tenant = tenant;
  return job;
}

TEST(ServeSchedulerTest, WeightedRoundRobinHonorsWeights) {
  FairScheduler scheduler(64);
  for (std::uint64_t i = 0; i < 12; ++i) {
    ASSERT_EQ(scheduler.push(job_for("heavy", i), 3), FairScheduler::Push::kOk);
  }
  for (std::uint64_t i = 0; i < 12; ++i) {
    ASSERT_EQ(scheduler.push(job_for("light", 100 + i), 1),
              FairScheduler::Push::kOk);
  }
  // Each full batch of 4 should split 3:1 while both tenants have backlog.
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<ServeJob> out;
    ASSERT_EQ(scheduler.pop_up_to(4, out), 4u);
    std::map<std::string, int> by_tenant;
    for (const auto& job : out) by_tenant[job.tenant]++;
    EXPECT_EQ(by_tenant["heavy"], 3) << "batch " << batch;
    EXPECT_EQ(by_tenant["light"], 1) << "batch " << batch;
  }
  // The light tenant is never starved: its queue drains once heavy's does.
  std::vector<ServeJob> rest;
  while (scheduler.depth() > 0) scheduler.pop_up_to(4, rest);
  std::map<std::string, int> totals;
  for (const auto& job : rest) totals[job.tenant]++;
  EXPECT_EQ(totals["heavy"], 3);
  EXPECT_EQ(totals["light"], 9);
  EXPECT_EQ(scheduler.scheduled(), 24u);
}

TEST(ServeSchedulerTest, BoundShedsAndCloseDrains) {
  FairScheduler scheduler(2);
  EXPECT_EQ(scheduler.push(job_for("t", 1), 1), FairScheduler::Push::kOk);
  EXPECT_EQ(scheduler.push(job_for("t", 2), 1), FairScheduler::Push::kOk);
  EXPECT_EQ(scheduler.push(job_for("t", 3), 1), FairScheduler::Push::kFull);
  scheduler.close();
  EXPECT_EQ(scheduler.push(job_for("t", 4), 1), FairScheduler::Push::kClosed);
  std::vector<ServeJob> out;
  EXPECT_EQ(scheduler.pop_up_to(8, out), 2u);  // backlog drains after close
  EXPECT_EQ(scheduler.pop_up_to(8, out), 0u);  // then end-of-stream
}

TEST(ServeSchedulerTest, CloseWakesBlockedConsumer) {
  FairScheduler scheduler(4);
  std::thread consumer([&] {
    std::vector<ServeJob> out;
    EXPECT_EQ(scheduler.pop_up_to(4, out), 0u);
  });
  scheduler.close();
  consumer.join();
}

// ---------------------------------------------------------------------------
// End-to-end over loopback

struct ServerHarness {
  std::shared_ptr<obs::Registry> registry = std::make_shared<obs::Registry>();
  std::shared_ptr<const judge::Llmj> judge;
  std::unique_ptr<Server> server;

  explicit ServerHarness(ServerConfig config = {},
                         judge::JudgeCacheConfig cache = {}) {
    auto client = core::make_simulated_client(2);
    judge = std::make_shared<const judge::Llmj>(
        client, llm::PromptStyle::kAgentDirect, cache);
    config.registry = registry;
    server = std::make_unique<Server>(
        toolchain::CompilerDriver(toolchain::nvc_persona()),
        toolchain::Executor(), judge, config);
    server->start();
  }
};

TEST(ServeServerTest, VerdictsMatchTheDirectJudge) {
  ServerConfig config;
  config.workers = 2;
  config.job_batch = 2;
  ServerHarness harness(config);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.server->port(), "t"))
      << client.last_error();
  // An identically configured judge evaluated directly must agree with
  // every verdict the server streams back (same simulated model, same
  // deterministic sampling seed 0).
  auto direct_client = core::make_simulated_client(2);
  const judge::Llmj direct(direct_client, llm::PromptStyle::kAgentDirect);
  const toolchain::CompilerDriver compiler(toolchain::nvc_persona());
  const toolchain::Executor executor;

  for (std::uint64_t id = 1; id <= 4; ++id) {
    const auto file = sample_file(id);
    const auto response = client.submit_and_wait(id, file);
    ASSERT_TRUE(response.has_value()) << client.last_error();
    ASSERT_EQ(response->type, ResponseType::kVerdict);
    const auto compiled = compiler.compile(file);
    const auto ran = executor.run(compiled.module);
    const auto decision = direct.evaluate(file, &compiled, &ran);
    EXPECT_EQ(response->verdict, judge::verdict_name(decision.verdict));
    EXPECT_EQ(response->judge_valid, decision.says_valid);
    EXPECT_EQ(response->compiled, compiled.success);
    EXPECT_EQ(response->executed, ran.passed());
  }
  const TenantStats stats = harness.server->tenants().stats("t");
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.completed_ok, 4u);
  EXPECT_EQ(stats.in_flight, 0u);
}

TEST(ServeServerTest, PingStatsAndProtocolErrors) {
  ServerHarness harness;
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.server->port(), "t"));
  ASSERT_TRUE(client.send_ping());
  auto response = client.next_response(5000);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->type, ResponseType::kPong);

  ASSERT_TRUE(client.send_stats());
  response = client.next_response(5000);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->type, ResponseType::kStats);
  ASSERT_TRUE(response->fields.count("draining"));
  EXPECT_FALSE(response->fields.at("draining").boolean);

  // A garbage line gets an id-less error frame, and the connection lives.
  ASSERT_TRUE(client.send_submit(1, sample_file(1)));  // keep the order: job…
  response = client.next_response(30000);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->terminal());
  const ServerStats before = harness.server->stats();
  EXPECT_EQ(before.protocol_errors, 0u);
}

TEST(ServeServerTest, RateLimitShedsDeterministically) {
  ServerConfig config;
  TenantConfig limited;
  limited.rate_per_sec = 1e-6;  // refills nothing on a test timescale
  limited.burst = 2.0;
  config.tenants.emplace_back("limited", limited);
  ServerHarness harness(config);

  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.server->port(), "limited"));
  // Burst of 5: exactly 2 fit the bucket, 3 shed as rate_limit.
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(client.send_submit(id, sample_file(id)));
  }
  std::size_t verdicts = 0;
  std::size_t rate_sheds = 0;
  for (int i = 0; i < 5; ++i) {
    const auto response = client.next_response(30000);
    ASSERT_TRUE(response.has_value()) << client.last_error();
    ASSERT_TRUE(response->terminal());
    if (response->type == ResponseType::kVerdict) {
      ++verdicts;
    } else if (response->type == ResponseType::kShed) {
      EXPECT_EQ(response->reason, "rate_limit");
      ++rate_sheds;
    }
  }
  EXPECT_EQ(verdicts, 2u);
  EXPECT_EQ(rate_sheds, 3u);
  const TenantStats stats = harness.server->tenants().stats("limited");
  EXPECT_EQ(stats.shed_rate, 3u);
  EXPECT_EQ(stats.accepted, 2u);
}

TEST(ServeServerTest, GracefulDrainLosesNoAcceptedJob) {
  // The satellite invariant (docs/SERVING.md): submit a stream, yank the
  // server mid-flight, and every submitted id must come back with exactly
  // one terminal response — verdict for the accepted jobs, shed
  // "draining" for the late ones — with the accounting balanced.
  ServerConfig config;
  config.workers = 1;
  config.job_batch = 2;
  ServerHarness harness(config);

  constexpr std::uint64_t kJobs = 12;
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.server->port(), "t"));
  for (std::uint64_t id = 1; id <= kJobs; ++id) {
    ASSERT_TRUE(client.send_submit(id, sample_file(id)));
  }
  harness.server->request_drain();

  std::map<std::uint64_t, int> terminals;
  bool saw_bye = false;
  for (;;) {
    const auto response = client.next_response(30000);
    if (!response.has_value()) break;  // EOF after the drain completes
    if (response->type == ResponseType::kBye) saw_bye = true;
    if (response->terminal()) {
      ASSERT_TRUE(response->has_id);
      terminals[response->id] += 1;
      if (response->type == ResponseType::kShed) {
        EXPECT_EQ(response->reason, "draining");
      }
    }
  }
  harness.server->wait();
  EXPECT_TRUE(saw_bye);

  EXPECT_EQ(terminals.size(), kJobs);
  for (std::uint64_t id = 1; id <= kJobs; ++id) {
    EXPECT_EQ(terminals[id], 1) << "job " << id;
  }
  const TenantStats totals = harness.server->tenants().totals();
  EXPECT_EQ(totals.submitted, kJobs);
  EXPECT_EQ(totals.submitted, totals.accepted + totals.shed_total());
  EXPECT_EQ(totals.accepted, totals.completed_ok + totals.completed_error);
  EXPECT_EQ(totals.in_flight, 0u);
  const ServerStats stats = harness.server->stats();
  EXPECT_EQ(stats.orphaned_responses, 0u);
}

TEST(ServeServerTest, ShutdownOpDrainsFromTheWire) {
  ServerHarness harness;
  Client client;
  ASSERT_TRUE(client.connect("127.0.0.1", harness.server->port(), "t"));
  ASSERT_TRUE(client.send_shutdown());
  bool saw_bye = false;
  for (;;) {
    const auto response = client.next_response(30000);
    if (!response.has_value()) break;
    if (response->type == ResponseType::kBye) saw_bye = true;
  }
  harness.server->wait();
  EXPECT_TRUE(saw_bye);
  EXPECT_TRUE(harness.server->draining());
}

TEST(ServeServerTest, RegistryProbesAppearAndUnregisterWithTheServer) {
  auto registry = std::make_shared<obs::Registry>();
  {
    ServerConfig config;
    config.registry = registry;
    auto client = core::make_simulated_client(2);
    auto judge = std::make_shared<const judge::Llmj>(
        client, llm::PromptStyle::kAgentDirect);
    Server server(toolchain::CompilerDriver(toolchain::nvc_persona()),
                  toolchain::Executor(), judge, config);
    server.start();
    Client wire;
    ASSERT_TRUE(wire.connect("127.0.0.1", server.port(), "probe-tenant"));
    const auto response = wire.submit_and_wait(1, sample_file(1));
    ASSERT_TRUE(response.has_value());

    const auto snapshot = registry->snapshot();
    const auto* submitted = obs::find_sample(snapshot, "serve.submitted");
    ASSERT_NE(submitted, nullptr);
    EXPECT_DOUBLE_EQ(submitted->value, 1.0);
    EXPECT_NE(obs::find_sample(snapshot, "serve.sched.depth"), nullptr);
    EXPECT_NE(obs::find_sample(snapshot, "serve.connections_accepted"),
              nullptr);
    EXPECT_NE(obs::find_sample(snapshot,
                               "serve.tenant.probe-tenant.completed_ok"),
              nullptr);
    EXPECT_NE(obs::find_sample(snapshot, "serve.tenant.probe-tenant.latency_us",
                               "lt_1s"),
              nullptr);
  }  // ~Server drains and unregisters everything under "serve."
  for (const auto& sample : registry->snapshot()) {
    EXPECT_NE(sample.name.rfind("serve.", 0), 0u)
        << "leaked probe: " << sample.name;
  }
}

}  // namespace
}  // namespace llm4vv::serve
