// S3 chaos suite: drives a 120-file corpus through the full pipeline under
// seeded FaultPlan transient rates of 0%, 5% and 20% with retries enabled,
// asserting (a) no hangs (the test completing is the assertion — every run
// is bounded by the retry budget), (b) every input file is accounted for as
// success or judge_error with nothing dropped, and (c) verdicts of
// non-errored records are byte-identical to the fault-free run: fault draws
// and retries never leak into the judgment RNG.
//
// Rebuilding with -DLLM4VV_CHAOS=ON extends the sweep (more rates, a
// second corpus seed) for the CI chaos leg.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "corpus/generator.hpp"
#include "judge/judge.hpp"
#include "llm/client.hpp"
#include "llm/coder_model.hpp"
#include "llm/faults.hpp"
#include "pipeline/validation_pipeline.hpp"
#include "probing/prober.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::pipeline {
namespace {

constexpr std::size_t kCorpusSize = 120;

/// The perf_pipeline corpus shape: a probed batch with a 30% invalid share
/// (issues 0-2), so the judge sees a realistic verdict mix.
std::vector<frontend::SourceFile> chaos_corpus(std::uint64_t seed) {
  const std::size_t invalid = kCorpusSize * 3 / 10;
  const auto suite = corpus::generate_suite(testutil::corpus_config(
      frontend::Flavor::kOpenACC, kCorpusSize + 32, seed));

  probing::ProbingConfig probe;
  probe.issue_counts = {invalid / 3, invalid / 3, invalid - 2 * (invalid / 3),
                        0, 0, kCorpusSize - invalid};
  probe.seed = 77;
  const auto probed = probing::probe_suite(suite, probe);

  std::vector<frontend::SourceFile> files;
  files.reserve(probed.files.size());
  for (const auto& pf : probed.files) files.push_back(pf.file);
  return files;
}

/// Pipeline over a simulated model with the given transient fault rate.
/// Judge cache off (every file must actually face the faulty model),
/// kRecordAll (every file reaches the judge), grouped judge submissions so
/// multi-prompt passes exercise the client's failed-batch splitting.
PipelineResult run_chaos(const std::vector<frontend::SourceFile>& files,
                         double transient_rate, std::uint32_t max_attempts) {
  llm::CoderModelConfig model_config;
  if (transient_rate > 0.0) {
    llm::FaultPlanConfig plan;
    plan.transient_rate = transient_rate;
    model_config.faults = std::make_shared<llm::FaultPlan>(plan);
  }
  auto model = std::make_shared<const llm::SimulatedCoderModel>(model_config);

  llm::RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.base_backoff_us = 50;
  retry.max_backoff_us = 400;
  auto client = std::make_shared<llm::ModelClient>(
      model, /*max_concurrency=*/2, /*transcript_capacity=*/0,
      llm::BatcherConfig{}, retry);

  judge::JudgeCacheConfig cache;
  cache.enabled = false;
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect, cache);

  PipelineConfig config;
  config.mode = PipelineMode::kRecordAll;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 2;
  config.judge_batch_size = 4;
  const ValidationPipeline pipe(
      testutil::clean_driver(frontend::Flavor::kOpenACC),
      toolchain::Executor(), judge, config);
  return pipe.run(files);
}

/// (b): every input file is accounted for — judged or judge_error, nothing
/// dropped, counters consistent with the records.
void assert_accounted(const PipelineResult& result) {
  ASSERT_EQ(result.records.size(), kCorpusSize);
  std::size_t judged = 0;
  std::size_t errored = 0;
  for (const auto& record : result.records) {
    EXPECT_FALSE(record.dropped);
    EXPECT_NE(record.judged, record.judge_error)
        << "record " << record.index
        << " must resolve as exactly one of judged / judge_error";
    judged += record.judged ? 1 : 0;
    errored += record.judge_error ? 1 : 0;
    if (record.judge_error) {
      EXPECT_EQ(record.judge_error_kind, llm::FailureKind::kTransient);
      EXPECT_GT(record.judge_attempts, 0u);
    }
  }
  EXPECT_EQ(judged + errored, kCorpusSize);
  EXPECT_EQ(result.judge_errors, errored);
  EXPECT_EQ(result.dropped_items, 0u);
  EXPECT_EQ(result.judge_stage.processed, kCorpusSize);
}

/// (c): non-errored records carry byte-identical verdicts to the baseline.
void assert_verdicts_match(const PipelineResult& chaos,
                           const PipelineResult& baseline) {
  for (std::size_t i = 0; i < chaos.records.size(); ++i) {
    const auto& record = chaos.records[i];
    if (record.judge_error) continue;
    const auto& reference = baseline.records[i];
    EXPECT_EQ(record.verdict, reference.verdict) << "record " << i;
    EXPECT_EQ(record.judge_says_valid, reference.judge_says_valid)
        << "record " << i;
    EXPECT_EQ(record.pipeline_says_valid, reference.pipeline_says_valid)
        << "record " << i;
  }
}

void run_sweep(std::uint64_t corpus_seed) {
  const auto files = chaos_corpus(corpus_seed);
  ASSERT_EQ(files.size(), kCorpusSize);
  const PipelineResult baseline = run_chaos(files, 0.0, 1);
  assert_accounted(baseline);
  EXPECT_EQ(baseline.judge_errors, 0u);
  EXPECT_EQ(baseline.judge_retries, 0u);

  for (const double rate : {0.0, 0.05, 0.20}) {
    SCOPED_TRACE("transient_rate=" + std::to_string(rate));
    const PipelineResult result = run_chaos(files, rate, /*max_attempts=*/4);
    assert_accounted(result);
    assert_verdicts_match(result, baseline);

    std::size_t judged = 0;
    for (const auto& record : result.records) judged += record.judged;
    // >= 95% of files must be judged successfully via retries: a file only
    // errors when all 4 of its attempts draw transient (rate^4).
    EXPECT_GE(judged, kCorpusSize * 95 / 100);

    if (rate == 0.0) {
      // The fault-free sweep member is the baseline, bit for bit.
      EXPECT_EQ(result.judge_errors, 0u);
      EXPECT_EQ(result.judge_retries, 0u);
      // Totals accumulate across worker threads in nondeterministic order,
      // so allow FP-summation noise; per-record costs are asserted exact
      // through the verdict byte-identity above.
      EXPECT_NEAR(result.judge_gpu_seconds, baseline.judge_gpu_seconds,
                  1e-6 * baseline.judge_gpu_seconds);
      for (const auto& bucket : result.judge_retry_latency_hist) {
        EXPECT_EQ(bucket, 0u);
      }
    } else {
      // Faults really fired and the retry layer really paid for them.
      EXPECT_GT(result.judge_retries, 0u);
      std::uint64_t hist_total = 0;
      for (const auto& bucket : result.judge_retry_latency_hist) {
        hist_total += bucket;
      }
      EXPECT_GT(hist_total, 0u);
      // Note: no sim-GPU equality with the baseline — a split pass serves
      // its survivors in singleton retries that forgo the batched prefill
      // amortization, so faulted runs legitimately price higher.
      EXPECT_GT(result.judge_gpu_seconds, 0.0);
    }
  }
}

TEST(ChaosPipelineTest, SweepTransientRatesWithRetries) { run_sweep(1234); }

#ifdef LLM4VV_CHAOS
// CI chaos leg: a second corpus seed and harsher rates, including a run at
// the retry budget's edge (two attempts against 20% faults still has to
// account for every file — more errors, never drops).
TEST(ChaosPipelineTest, ExtendedSweepSecondCorpus) { run_sweep(4321); }

TEST(ChaosPipelineTest, TightRetryBudgetStillAccountsForEverything) {
  const auto files = chaos_corpus(1234);
  const PipelineResult baseline = run_chaos(files, 0.0, 1);
  const PipelineResult result = run_chaos(files, 0.35, /*max_attempts=*/2);
  assert_accounted(result);
  assert_verdicts_match(result, baseline);
  EXPECT_GT(result.judge_retries, 0u);
}
#endif

}  // namespace
}  // namespace llm4vv::pipeline
