#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::toolchain {
namespace {

using frontend::Flavor;

frontend::SourceFile make_file(const std::string& content,
                               Flavor flavor = Flavor::kOpenACC,
                               const std::string& name = "unit.c") {
  frontend::SourceFile file;
  file.name = name;
  file.flavor = flavor;
  file.content = content;
  return file;
}

TEST(CompilerTest, ValidFileSucceedsWithModule) {
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto result =
      driver.compile(make_file("int main() { return 0; }"));
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.return_code, 0);
  ASSERT_NE(result.module, nullptr);
}

TEST(CompilerTest, NvcPersonaDiagnosticFormat) {
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto result = driver.compile(
      make_file("int main() { return ghost; }", Flavor::kOpenACC, "t.c"));
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.return_code, 2);
  EXPECT_NE(result.stderr_text.find("NVC++-S-"), std::string::npos);
  EXPECT_NE(result.stderr_text.find("(t.c: "), std::string::npos);
  EXPECT_EQ(result.module, nullptr);
}

TEST(CompilerTest, ClangPersonaDiagnosticFormat) {
  const auto driver = testutil::clean_driver(Flavor::kOpenMP);
  const auto result = driver.compile(
      make_file("int main() { return ghost; }", Flavor::kOpenMP, "t.c"));
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.return_code, 1);
  EXPECT_NE(result.stderr_text.find("t.c:"), std::string::npos);
  EXPECT_NE(result.stderr_text.find("error:"), std::string::npos);
}

TEST(CompilerTest, OmpVersionGateAt45) {
  const auto driver = testutil::clean_driver(Flavor::kOpenMP);
  const auto result = driver.compile(make_file(
      "int main() {\n"
      "#pragma omp loop bind(teams)\n"
      "  for (int i = 0; i < 4; i++) { }\n"
      "  return 0;\n"
      "}",
      Flavor::kOpenMP));
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.stderr_text.find("requires OpenMP 5.0"),
            std::string::npos);
}

TEST(CompilerTest, AccVersionGateAt33) {
  // nvc persona supports OpenACC 3.3, so 3.3 features pass.
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto result = driver.compile(make_file(
      "int main() {\n"
      "  double a[4];\n"
      "#pragma acc wait if(1)\n"
      "  a[0] = 1.0;\n"
      "  return 0;\n"
      "}"));
  EXPECT_TRUE(result.success) << result.stderr_text;
}

TEST(CompilerTest, StrictnessQuirkIsDeterministicPerFile) {
  CompilerConfig config = nvc_persona();
  config.strictness_reject_rate = 0.5;
  const CompilerDriver driver(config);
  const auto file = make_file(
      "int main() {\n"
      "  double a[4];\n"
      "#pragma acc parallel loop\n"
      "  for (int i = 0; i < 4; i++) { a[i] = i; }\n"
      "  return 0;\n"
      "}");
  const bool first = driver.compile(file).success;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(driver.compile(file).success, first);
  }
}

TEST(CompilerTest, StrictnessQuirkRateIsApproximatelyHonoured) {
  CompilerConfig config = nvc_persona();
  config.strictness_reject_rate = 0.3;
  const CompilerDriver driver(config);
  const auto suite =
      corpus::generate_suite(testutil::corpus_config(Flavor::kOpenACC, 300, 99));
  int rejected = 0;
  for (const auto& tc : suite.cases) {
    if (!driver.compile(tc.file).success) ++rejected;
  }
  EXPECT_NEAR(static_cast<double>(rejected) / 300.0, 0.3, 0.08);
}

TEST(CompilerTest, StrictnessQuirkSkipsPlainCode) {
  CompilerConfig config = nvc_persona();
  config.strictness_reject_rate = 1.0;  // reject every directive file
  const CompilerDriver driver(config);
  const auto plain = make_file("int main() { return 0; }");
  EXPECT_TRUE(driver.compile(plain).success);
  const auto directive_file = make_file(
      "int main() {\n"
      "  double a[2];\n"
      "#pragma acc parallel loop\n"
      "  for (int i = 0; i < 2; i++) { a[i] = i; }\n"
      "  return 0;\n"
      "}");
  EXPECT_FALSE(driver.compile(directive_file).success);
}

TEST(CompilerTest, PersonaDefaultsMatchPaperSetup) {
  EXPECT_EQ(nvc_persona().flavor, Flavor::kOpenACC);
  EXPECT_EQ(nvc_persona().supported_version, 33);
  EXPECT_EQ(clang_persona().flavor, Flavor::kOpenMP);
  EXPECT_EQ(clang_persona().supported_version, 45);
}

TEST(ExecutorTest, NullModuleDoesNotRun) {
  const Executor executor;
  const auto record = executor.run(nullptr);
  EXPECT_FALSE(record.ran);
  EXPECT_FALSE(record.passed());
}

TEST(ExecutorTest, PassingProgram) {
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled = driver.compile(
      make_file("int main() { printf(\"ok\\n\"); return 0; }"));
  const Executor executor;
  const auto record = executor.run(compiled.module);
  EXPECT_TRUE(record.passed());
  EXPECT_EQ(record.stdout_text, "ok\n");
}

TEST(ExecutorTest, FailingReturnCodePropagates) {
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled =
      driver.compile(make_file("int main() { return 7; }"));
  const Executor executor;
  const auto record = executor.run(compiled.module);
  EXPECT_TRUE(record.ran);
  EXPECT_FALSE(record.passed());
  EXPECT_EQ(record.return_code, 7);
}

TEST(ExecutorTest, TrapSurfacesInRecord) {
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled = driver.compile(make_file(
      "int main() { double *p; return (int)p[0]; }"));
  const Executor executor;
  const auto record = executor.run(compiled.module);
  EXPECT_EQ(record.trap, vm::TrapKind::kNullDeref);
  EXPECT_EQ(record.return_code, 139);
  EXPECT_NE(record.stderr_text.find("runtime error"), std::string::npos);
}

}  // namespace
}  // namespace llm4vv::toolchain
