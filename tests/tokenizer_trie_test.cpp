#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/generator.hpp"
#include "llm/tokenizer.hpp"
#include "support/rng.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::llm {
namespace {

/// Corpus text of the kind the tokenizer sees in production: generated V&V
/// test files, which are dense in the fragment vocabulary.
std::string corpus_text(std::uint64_t seed, std::size_t count = 8) {
  const auto gen =
      testutil::corpus_config(frontend::Flavor::kOpenACC, count, seed);
  std::string text;
  for (const auto& tc : corpus::generate_suite(gen).cases) {
    text += tc.file.content;
  }
  return text;
}

/// Random bytes (all 256 values possible, including NUL and newlines) to
/// exercise the byte-fallback and partial-fragment paths.
std::string random_bytes(std::uint64_t seed, std::size_t length) {
  support::Rng rng(seed);
  std::string text;
  text.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    text.push_back(static_cast<char>(rng.next_below(256)));
  }
  return text;
}

TEST(TokenizerTrieTest, MatchesReferenceOnCorpusText) {
  const auto& tokenizer = default_tokenizer();
  for (std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    const std::string text = corpus_text(seed);
    EXPECT_EQ(tokenizer.encode(text), tokenizer.encode_reference(text))
        << "seed " << seed;
  }
}

TEST(TokenizerTrieTest, MatchesReferenceOnRandomBytes) {
  const auto& tokenizer = default_tokenizer();
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const std::string text = random_bytes(seed, 2048);
    EXPECT_EQ(tokenizer.encode(text), tokenizer.encode_reference(text))
        << "seed " << seed;
  }
}

TEST(TokenizerTrieTest, RoundTripOnCorpusAndRandomText) {
  const auto& tokenizer = default_tokenizer();
  for (const std::string& text :
       {corpus_text(99), random_bytes(5, 4096), std::string(),
        std::string("\0\0mid\0null", 10)}) {
    EXPECT_EQ(tokenizer.decode(tokenizer.encode(text)), text);
  }
}

TEST(TokenizerTrieTest, CountTokensEqualsEncodeSize) {
  const auto& tokenizer = default_tokenizer();
  for (std::uint64_t seed : {3u, 17u}) {
    const std::string corpus = corpus_text(seed);
    EXPECT_EQ(tokenizer.count_tokens(corpus), tokenizer.encode(corpus).size());
    const std::string noise = random_bytes(seed, 1024);
    EXPECT_EQ(tokenizer.count_tokens(noise), tokenizer.encode(noise).size());
  }
}

TEST(TokenizerTrieTest, EncodeIntoMatchesEncodeAndReusesCapacity) {
  const auto& tokenizer = default_tokenizer();
  std::vector<std::int32_t> buffer;
  const std::string big = corpus_text(11);
  tokenizer.encode_into(big, buffer);
  EXPECT_EQ(buffer, tokenizer.encode(big));

  const std::size_t grown = buffer.capacity();
  const std::string small = corpus_text(12, 1);
  tokenizer.encode_into(small, buffer);
  EXPECT_EQ(buffer, tokenizer.encode(small));
  EXPECT_EQ(buffer.capacity(), grown);  // clear() + refill, no shrink
}

TEST(TokenizerTrieTest, LongestMatchWinsOverPrefixes) {
  const auto& tokenizer = default_tokenizer();
  // "#pragma acc " is a vocabulary fragment whose prefixes ("#", "#p", ...)
  // must not be emitted when the full fragment is present.
  const auto ids = tokenizer.encode("#pragma acc parallel loop");
  ASSERT_FALSE(ids.empty());
  EXPECT_EQ(tokenizer.token_text(ids[0]), "#pragma acc ");
}

TEST(TokenizerTrieTest, SingleByteInputsAreByteTokens) {
  const auto& tokenizer = default_tokenizer();
  for (int b = 0; b < 256; ++b) {
    const std::string text(1, static_cast<char>(b));
    const auto ids = tokenizer.encode(text);
    ASSERT_EQ(ids.size(), 1u) << b;
    EXPECT_EQ(tokenizer.decode(ids), text) << b;
  }
}

}  // namespace
}  // namespace llm4vv::llm
