#include <gtest/gtest.h>

#include "probing/candidates.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::probing {
namespace {

using frontend::Flavor;

TEST(CandidatesTest, ProducesRequestedCount) {
  CandidateConfig config;
  config.count = 60;
  const auto candidates = generate_candidates(config);
  EXPECT_EQ(candidates.size(), 60u);
}

TEST(CandidatesTest, DeterministicForEqualSeeds) {
  CandidateConfig config;
  config.count = 30;
  config.seed = 5;
  const auto a = generate_candidates(config);
  const auto b = generate_candidates(config);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].file.content, b[i].file.content);
    EXPECT_EQ(a[i].truly_valid, b[i].truly_valid);
  }
}

TEST(CandidatesTest, DefectRateApproximatelyHonoured) {
  CandidateConfig config;
  config.count = 400;
  config.defect_rate = 0.5;
  const auto candidates = generate_candidates(config);
  std::size_t defective = 0;
  for (const auto& c : candidates) {
    if (!c.truly_valid) ++defective;
  }
  EXPECT_NEAR(static_cast<double>(defective) / 400.0, 0.5, 0.08);
}

TEST(CandidatesTest, ZeroDefectRateGivesAllValid) {
  CandidateConfig config;
  config.count = 40;
  config.defect_rate = 0.0;
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const toolchain::Executor executor;
  for (const auto& c : generate_candidates(config)) {
    EXPECT_TRUE(c.truly_valid);
    EXPECT_EQ(c.defect, IssueType::kNoIssue);
    const auto compiled = driver.compile(c.file);
    ASSERT_TRUE(compiled.success);
    EXPECT_TRUE(executor.run(compiled.module).passed());
  }
}

TEST(CandidatesTest, DefectLabelsAreConsistent) {
  CandidateConfig config;
  config.count = 100;
  config.defect_rate = 1.0;
  for (const auto& c : generate_candidates(config)) {
    EXPECT_FALSE(c.truly_valid);
    EXPECT_NE(c.defect, IssueType::kNoIssue);
  }
}

TEST(CandidatesTest, DefectWeightsSteerTheMix) {
  CandidateConfig config;
  config.count = 200;
  config.defect_rate = 1.0;
  config.defect_weights = {0.0, 1.0, 0.0, 0.0, 0.0};  // only brackets
  for (const auto& c : generate_candidates(config)) {
    EXPECT_EQ(c.defect, IssueType::kRemovedOpeningBracket);
  }
}

TEST(CandidatesTest, WorksForOpenMp) {
  CandidateConfig config;
  config.flavor = Flavor::kOpenMP;
  config.count = 50;
  const auto candidates = generate_candidates(config);
  for (const auto& c : candidates) {
    EXPECT_EQ(c.file.flavor, Flavor::kOpenMP);
  }
}

}  // namespace
}  // namespace llm4vv::probing
