#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace llm4vv::vm {
namespace {

using testutil::run_source;

int rc_of(const std::string& body) {
  return run_source("int main() {\n" + body + "\n}").return_code;
}

// ---------------------------------------------------------------------------
// Arithmetic & control flow
// ---------------------------------------------------------------------------

TEST(VmTest, IntegerArithmetic) {
  EXPECT_EQ(rc_of("return 2 + 3 * 4 - 20 / 4 + 10 % 3;"), 2 + 12 - 5 + 1);
}

TEST(VmTest, PrecedenceAndParens) {
  EXPECT_EQ(rc_of("return (2 + 3) * 4 % 7;"), 20 % 7);
}

TEST(VmTest, FloatArithmeticAndCast) {
  EXPECT_EQ(rc_of("double x = 7.9; return (int)x;"), 7);
  EXPECT_EQ(rc_of("return (int)(1.5 + 2.25 * 2.0);"), 6);
}

TEST(VmTest, ComparisonsProduceBooleans) {
  EXPECT_EQ(rc_of("return (3 < 4) + (4 <= 4) + (5 > 4) + (4 >= 5) + "
                  "(2 == 2) + (2 != 2);"),
            1 + 1 + 1 + 0 + 1 + 0);
}

TEST(VmTest, ShortCircuitAndOr) {
  // The right operand must not run when short-circuited: a trap-div guards.
  EXPECT_EQ(rc_of("int z = 0; return (0 && (1 / z)) + 10;"), 10);
  EXPECT_EQ(rc_of("int z = 0; return (1 || (1 / z)) + 10;"), 11);
}

TEST(VmTest, TernarySelects) {
  EXPECT_EQ(rc_of("int a = 5; return a > 3 ? 1 : 2;"), 1);
  EXPECT_EQ(rc_of("int a = 1; return a > 3 ? 1 : 2;"), 2);
}

TEST(VmTest, BitwiseOps) {
  EXPECT_EQ(rc_of("return (12 & 10) + (12 | 3) + (5 ^ 1) + (1 << 4) + "
                  "(64 >> 3);"),
            8 + 15 + 4 + 16 + 8);
  EXPECT_EQ(rc_of("return (~0 & 255) == 255 ? 7 : 8;"), 7);
}

TEST(VmTest, WhileAndDoWhile) {
  EXPECT_EQ(rc_of("int i = 0; int s = 0; while (i < 5) { s += i; i++; } "
                  "return s;"),
            10);
  EXPECT_EQ(rc_of("int i = 0; do { i++; } while (i < 3); return i;"), 3);
}

TEST(VmTest, ForWithBreakContinue) {
  EXPECT_EQ(rc_of("int s = 0;\n"
                  "for (int i = 0; i < 10; i++) {\n"
                  "  if (i == 7) { break; }\n"
                  "  if (i % 2 == 0) { continue; }\n"
                  "  s += i;\n"
                  "}\n"
                  "return s;"),
            1 + 3 + 5);
}

TEST(VmTest, NestedLoopsWithBreak) {
  EXPECT_EQ(rc_of("int c = 0;\n"
                  "for (int i = 0; i < 3; i++) {\n"
                  "  for (int j = 0; j < 10; j++) {\n"
                  "    if (j == 2) { break; }\n"
                  "    c++;\n"
                  "  }\n"
                  "}\n"
                  "return c;"),
            6);
}

TEST(VmTest, PrePostIncrementSemantics) {
  EXPECT_EQ(rc_of("int x = 5; int a = x++; return a * 10 + x;"), 56);
  EXPECT_EQ(rc_of("int x = 5; int a = ++x; return a * 10 + x;"), 66);
  EXPECT_EQ(rc_of("int x = 5; x--; --x; return x;"), 3);
}

TEST(VmTest, PostIncrementOnArrayElement) {
  EXPECT_EQ(rc_of("int a[2]; a[0] = 4; int old = a[0]++; "
                  "return old * 10 + a[0];"),
            45);
}

TEST(VmTest, CompoundAssignments) {
  EXPECT_EQ(rc_of("int x = 10; x += 5; x -= 3; x *= 2; x /= 4; return x;"),
            6);
  EXPECT_EQ(rc_of("double d[1]; d[0] = 8.0; d[0] /= 2.0; d[0] += 1.0; "
                  "return (int)d[0];"),
            5);
}

TEST(VmTest, FunctionCallsAndRecursion) {
  EXPECT_EQ(run_source("long fib(long n) {\n"
                       "  if (n < 2) { return n; }\n"
                       "  return fib(n - 1) + fib(n - 2);\n"
                       "}\n"
                       "int main() { return fib(10); }")
                .return_code,
            55);
}

TEST(VmTest, GlobalsZeroInitializedAndMutable) {
  EXPECT_EQ(run_source("int counter;\n"
                       "void bump() { counter = counter + 2; }\n"
                       "int main() { bump(); bump(); return counter; }")
                .return_code,
            4);
}

TEST(VmTest, GlobalArrayZeroInitialized) {
  EXPECT_EQ(run_source("long table[8];\n"
                       "int main() {\n"
                       "  long s = 0;\n"
                       "  for (int i = 0; i < 8; i++) { s += table[i]; }\n"
                       "  return s == 0 ? 0 : 1;\n"
                       "}")
                .return_code,
            0);
}

TEST(VmTest, VlaSizedByRuntimeValue) {
  EXPECT_EQ(rc_of("int n = 6; double a[n];\n"
                  "for (int i = 0; i < n; i++) { a[i] = i; }\n"
                  "return (int)a[5];"),
            5);
}

TEST(VmTest, NonMainFallOffReturnsPoison) {
  // C UB modeling: a value-returning function without a return yields a
  // recognizable nonzero value (DESIGN.md §5, issue-4 mechanics).
  const auto result = run_source(
      "int broken() { int x = 1; x = x + 1; }\n"
      "int main() { return broken() == 0 ? 0 : 1; }");
  EXPECT_EQ(result.return_code, 1);
}

TEST(VmTest, MainFallOffReturnsZero) {
  EXPECT_EQ(rc_of("int x = 3; x = x + 1;"), 0);
}

// ---------------------------------------------------------------------------
// printf & runtime library
// ---------------------------------------------------------------------------

TEST(VmTest, PrintfFormats) {
  const auto result = run_source(
      "int main() {\n"
      "  printf(\"i=%d l=%ld f=%.2f s=%s c=%c pct=%%\\n\", 42, 7, 1.5, "
      "\"str\", 'x');\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(result.stdout_text, "i=42 l=7 f=1.50 s=str c=x pct=%\n");
}

TEST(VmTest, PrintfWidthAndPadding) {
  const auto result = run_source(
      "int main() { printf(\"[%5d][%-4d]\", 42, 7); return 0; }");
  EXPECT_EQ(result.stdout_text, "[   42][7   ]");
}

TEST(VmTest, MathBuiltins) {
  EXPECT_EQ(rc_of("return (int)(sqrt(49.0) + fabs(-2.5) + floor(1.9) + "
                  "ceil(0.1) + pow(2.0, 3.0));"),
            7 + 2 + 1 + 1 + 8);  // fabs(-2.5)=2.5; int conversion truncates sum 19.5 -> 19
}

TEST(VmTest, AbsAndLabs) {
  EXPECT_EQ(rc_of("return abs(-3) + labs(-4);"), 7);
}

TEST(VmTest, ExitBuiltinStopsExecution) {
  const auto result = run_source(
      "int main() { printf(\"before\"); exit(3); printf(\"after\"); "
      "return 0; }");
  EXPECT_EQ(result.return_code, 3);
  EXPECT_EQ(result.stdout_text, "before");
}

TEST(VmTest, RandIsDeterministicWithSrand) {
  const auto a = run_source(
      "int main() { srand(7); return rand() % 100; }");
  const auto b = run_source(
      "int main() { srand(7); return rand() % 100; }");
  EXPECT_EQ(a.return_code, b.return_code);
}

TEST(VmTest, CallocZeroInitializes) {
  EXPECT_EQ(rc_of("long *p;\n"
                  "p = (long *)calloc(8, sizeof(long));\n"
                  "long s = 0;\n"
                  "for (int i = 0; i < 8; i++) { s += p[i]; }\n"
                  "free(p);\n"
                  "return s == 0 ? 0 : 1;"),
            0);
}

// ---------------------------------------------------------------------------
// Memory safety traps
// ---------------------------------------------------------------------------

TEST(VmTest, UninitPointerDerefTraps) {
  const auto result = run_source(
      "int main() { double *p; p[0] = 1.0; return 0; }");
  EXPECT_EQ(result.trap, TrapKind::kNullDeref);
  EXPECT_EQ(result.return_code, 139);
  EXPECT_NE(result.stderr_text.find("runtime error"), std::string::npos);
}

TEST(VmTest, NullPointerDerefTraps) {
  const auto result = run_source(
      "int main() { double *p = NULL; return (int)p[0]; }");
  EXPECT_EQ(result.trap, TrapKind::kNullDeref);
}

TEST(VmTest, UseAfterFreeTraps) {
  const auto result = run_source(
      "#include <stdlib.h>\n"
      "int main() {\n"
      "  double *p;\n"
      "  p = (double *)malloc(4 * sizeof(double));\n"
      "  free(p);\n"
      "  p[0] = 1.0;\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(result.trap, TrapKind::kUseAfterFree);
}

TEST(VmTest, OutOfBoundsTraps) {
  const auto result = run_source(
      "#include <stdlib.h>\n"
      "int main() {\n"
      "  double *p;\n"
      "  p = (double *)malloc(4 * sizeof(double));\n"
      "  double v = p[4000000];\n"
      "  return (int)v;\n"
      "}");
  EXPECT_EQ(result.trap, TrapKind::kOutOfBounds);
}

TEST(VmTest, DivByZeroTraps) {
  const auto result =
      run_source("int main() { int z = 0; return 4 / z; }");
  EXPECT_EQ(result.trap, TrapKind::kDivByZero);
}

TEST(VmTest, ModByZeroTraps) {
  const auto result =
      run_source("int main() { int z = 0; return 4 % z; }");
  EXPECT_EQ(result.trap, TrapKind::kDivByZero);
}

TEST(VmTest, FreeOfNullIsNoop) {
  EXPECT_EQ(rc_of("free(NULL); return 0;"), 0);
}

TEST(VmTest, FreeOfMiddlePointerTraps) {
  const auto result = run_source(
      "#include <stdlib.h>\n"
      "int main() {\n"
      "  double *p;\n"
      "  p = (double *)malloc(8 * sizeof(double));\n"
      "  free(p + 2);\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(result.trap, TrapKind::kOutOfBounds);
}

TEST(VmTest, InfiniteLoopHitsStepLimit) {
  ExecLimits limits;
  limits.max_steps = 10000;
  const auto result = run_source(
      "int main() { int x = 0; while (1) { x++; } return x; }",
      frontend::Flavor::kOpenACC, limits);
  EXPECT_EQ(result.trap, TrapKind::kStepLimit);
  EXPECT_EQ(result.return_code, 124);
}

TEST(VmTest, RunawayOutputHitsOutputLimit) {
  ExecLimits limits;
  limits.max_output = 256;
  const auto result = run_source(
      "int main() { while (1) { printf(\"spam spam spam\\n\"); } return 0; }",
      frontend::Flavor::kOpenACC, limits);
  EXPECT_EQ(result.trap, TrapKind::kOutputLimit);
}

TEST(VmTest, RunawayStderrHitsOutputLimit) {
  // stderr shares the output budget: before the fix this loop grew the
  // stderr buffer without bound while stdout stayed empty.
  ExecLimits limits;
  limits.max_output = 256;
  const auto result = run_source(
      "int main() { while (1) { fprintf(0, \"err err err\\n\"); } return 0; }",
      frontend::Flavor::kOpenACC, limits);
  EXPECT_EQ(result.trap, TrapKind::kOutputLimit);
  EXPECT_EQ(result.return_code, 124);
  // The budget clamps the buffer instead of discarding it (the trap's own
  // render is appended after the clamped program output).
  EXPECT_LE(result.stderr_text.size(), 256u + 64u);
  EXPECT_NE(result.stderr_text.find("err err err"), std::string::npos);
}

TEST(VmTest, DeepRecursionHitsStackGuard) {
  const auto result = run_source(
      "int down(int n) { return down(n + 1); }\n"
      "int main() { return down(0); }");
  EXPECT_EQ(result.trap, TrapKind::kStackOverflow);
}

TEST(VmTest, AbsurdAllocationTraps) {
  const auto result = run_source(
      "#include <stdlib.h>\n"
      "int main() {\n"
      "  double *p;\n"
      "  p = (double *)malloc(999999999 * sizeof(double));\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(result.trap, TrapKind::kBadAlloc);
}

// ---------------------------------------------------------------------------
// Device data model
// ---------------------------------------------------------------------------

TEST(VmDeviceTest, CopyinCopyoutRoundTrip) {
  EXPECT_EQ(rc_of("double a[4];\n"
                  "double b[4];\n"
                  "for (int i = 0; i < 4; i++) { a[i] = i; b[i] = 0.0; }\n"
                  "#pragma acc parallel loop copyin(a[0:4]) copyout(b[0:4])\n"
                  "for (int i = 0; i < 4; i++) { b[i] = a[i] * 2.0; }\n"
                  "return (int)(b[3]);"),
            6);
}

TEST(VmDeviceTest, MissingCopyoutLeavesHostStale) {
  // Results written on the device without copy-back never reach the host.
  EXPECT_EQ(rc_of("#include <stdlib.h>\n"
                  "double *a;\n"
                  "a = (double *)malloc(4 * sizeof(double));\n"
                  "for (int i = 0; i < 4; i++) { a[i] = 1.0; }\n"
                  "#pragma acc parallel loop copyin(a[0:4])\n"
                  "for (int i = 0; i < 4; i++) { a[i] = 9.0; }\n"
                  "return (int)a[0];"),
            1);
}

TEST(VmDeviceTest, HeapNotPresentTrapsInDeviceMode) {
  const auto result = run_source(
      "#include <stdlib.h>\n"
      "int main() {\n"
      "  double *a;\n"
      "  a = (double *)malloc(4 * sizeof(double));\n"
      "  for (int i = 0; i < 4; i++) { a[i] = 1.0; }\n"
      "#pragma acc parallel loop\n"
      "  for (int i = 0; i < 4; i++) { a[i] = 2.0; }\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(result.trap, TrapKind::kNotPresent);
  EXPECT_EQ(result.return_code, 1);  // OpenACC runtime FATAL ERROR style
}

TEST(VmDeviceTest, StaticArrayImplicitlyShared) {
  EXPECT_EQ(rc_of("double a[4];\n"
                  "for (int i = 0; i < 4; i++) { a[i] = 1.0; }\n"
                  "#pragma acc parallel loop\n"
                  "for (int i = 0; i < 4; i++) { a[i] = a[i] + 1.0; }\n"
                  "return (int)a[0];"),
            2);
}

TEST(VmDeviceTest, PresentFailsWithoutMapping) {
  const auto result = run_source(
      "#include <stdlib.h>\n"
      "int main() {\n"
      "  double *a;\n"
      "  a = (double *)malloc(4 * sizeof(double));\n"
      "#pragma acc parallel loop present(a[0:4])\n"
      "  for (int i = 0; i < 4; i++) { a[i] = 1.0; }\n"
      "  return 0;\n"
      "}");
  EXPECT_EQ(result.trap, TrapKind::kNotPresent);
}

TEST(VmDeviceTest, EnterDataUpdateExitData) {
  EXPECT_EQ(rc_of("#include <stdlib.h>\n"
                  "double *a;\n"
                  "a = (double *)malloc(4 * sizeof(double));\n"
                  "for (int i = 0; i < 4; i++) { a[i] = 1.0; }\n"
                  "#pragma acc enter data copyin(a[0:4])\n"
                  "#pragma acc parallel loop present(a[0:4])\n"
                  "for (int i = 0; i < 4; i++) { a[i] = a[i] + 4.0; }\n"
                  "#pragma acc update host(a[0:4])\n"
                  "int v = (int)a[2];\n"
                  "#pragma acc exit data delete(a[0:4])\n"
                  "return v;"),
            5);
}

TEST(VmDeviceTest, UpdateDevicePushesHostChanges) {
  EXPECT_EQ(rc_of("#include <stdlib.h>\n"
                  "double *a;\n"
                  "a = (double *)malloc(2 * sizeof(double));\n"
                  "a[0] = 1.0;\n"
                  "#pragma acc enter data copyin(a[0:2])\n"
                  "a[0] = 7.0;\n"
                  "#pragma acc update device(a[0:2])\n"
                  "#pragma acc parallel loop present(a[0:2])\n"
                  "for (int i = 0; i < 1; i++) { a[i] = a[i] + 1.0; }\n"
                  "#pragma acc update host(a[0:2])\n"
                  "int v = (int)a[0];\n"
                  "#pragma acc exit data delete(a[0:2])\n"
                  "return v;"),
            8);
}

TEST(VmDeviceTest, NestedDataRegionRefCounts) {
  // Inner copyin on already-present data must not re-copy (OpenACC
  // semantics): the device keeps the value written by the first kernel.
  EXPECT_EQ(rc_of("#include <stdlib.h>\n"
                  "double *a;\n"
                  "a = (double *)malloc(2 * sizeof(double));\n"
                  "a[0] = 1.0;\n"
                  "#pragma acc data copy(a[0:2])\n"
                  "{\n"
                  "#pragma acc parallel loop present(a[0:2])\n"
                  "  for (int i = 0; i < 1; i++) { a[i] = 5.0; }\n"
                  "#pragma acc parallel loop copyin(a[0:2])\n"
                  "  for (int i = 0; i < 1; i++) { a[i] = a[i] + 1.0; }\n"
                  "}\n"
                  "return (int)a[0];"),
            6);
}

TEST(VmDeviceTest, OmpTargetMapTofrom) {
  EXPECT_EQ(run_source("#include <stdlib.h>\n"
                       "int main() {\n"
                       "  long *v;\n"
                       "  v = (long *)malloc(4 * sizeof(long));\n"
                       "  for (int i = 0; i < 4; i++) { v[i] = i; }\n"
                       "#pragma omp target teams distribute parallel for "
                       "map(tofrom: v[0:4])\n"
                       "  for (int i = 0; i < 4; i++) { v[i] = v[i] * 3; }\n"
                       "  return (int)v[3];\n"
                       "}",
                       frontend::Flavor::kOpenMP)
                .return_code,
            9);
}

TEST(VmDeviceTest, AccOnDeviceReflectsRegion) {
  EXPECT_EQ(rc_of("int host = acc_on_device(acc_device_default);\n"
                  "int dev = 0;\n"
                  "double a[1];\n"
                  "#pragma acc parallel loop\n"
                  "for (int i = 0; i < 1; i++) { a[i] = 0.0; dev = "
                  "acc_on_device(acc_device_default); }\n"
                  "return host * 10 + dev;"),
            1);
}

TEST(VmDeviceTest, ReductionScalarSurvivesRegion) {
  EXPECT_EQ(rc_of("double a[8];\n"
                  "double sum = 0.0;\n"
                  "for (int i = 0; i < 8; i++) { a[i] = 1.0; }\n"
                  "#pragma acc parallel loop reduction(+:sum)\n"
                  "for (int i = 0; i < 8; i++) { sum = sum + a[i]; }\n"
                  "return (int)sum;"),
            8);
}

// ---------------------------------------------------------------------------
// Bytecode plumbing
// ---------------------------------------------------------------------------

TEST(BytecodeTest, DisassemblyMentionsOpsAndConsts) {
  frontend::DiagnosticEngine diags;
  auto program = testutil::analyze_source(
      "int main() { return 40 + 2; }", diags);
  ASSERT_FALSE(diags.has_errors());
  const auto module = lower(program, {});
  const std::string text =
      disassemble(module, module.chunks[static_cast<std::size_t>(
                              module.main_chunk)]);
  EXPECT_NE(text.find("push_const"), std::string::npos);
  EXPECT_NE(text.find("add"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(BytecodeTest, AllOpNamesDefined) {
  for (int op = 0; op <= static_cast<int>(Op::kDevAction); ++op) {
    EXPECT_STRNE(op_name(static_cast<Op>(op)), "?");
  }
}

TEST(BytecodeTest, TrapKindNamesDefined) {
  for (int kind = 0; kind <= static_cast<int>(TrapKind::kInternal); ++kind) {
    EXPECT_STRNE(trap_kind_name(static_cast<TrapKind>(kind)), "?");
  }
}

}  // namespace
}  // namespace llm4vv::vm
