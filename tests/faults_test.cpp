// Unit coverage of the resilience layer (PR 6): FaultPlan determinism, the
// ModelError taxonomy, and the ModelClient's retry / deadline / split /
// breaker / backpressure machinery. The end-to-end sweep lives in
// chaos_pipeline_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "llm/client.hpp"
#include "llm/coder_model.hpp"
#include "llm/faults.hpp"
#include "support/rng.hpp"

namespace llm4vv::llm {
namespace {

// ---------------------------------------------------------------------------
// Scripted models
// ---------------------------------------------------------------------------

/// Fails the first `fail_attempts` attempts of every prompt (reading the
/// retry ordinal the client stamps into params.attempt), then serves a
/// deterministic completion. Counts model calls.
class FlakyModel final : public LanguageModel {
 public:
  explicit FlakyModel(std::uint32_t fail_attempts,
                      bool permanent = false)
      : fail_attempts_(fail_attempts), permanent_(permanent) {}

  std::string name() const override { return "flaky-model"; }

  Completion generate(const std::string& prompt,
                      const GenerationParams& params) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    if (params.attempt < fail_attempts_) {
      if (permanent_) {
        throw PermanentModelError("flaky: permanent refusal");
      }
      throw TransientModelError("flaky: transient hiccup");
    }
    Completion completion;
    completion.text = "ok:" + prompt;
    completion.prompt_tokens = prompt.size();
    completion.completion_tokens = 3;
    completion.latency_seconds = 0.25;
    return completion;
  }

  int calls() const { return calls_.load(std::memory_order_relaxed); }

 private:
  std::uint32_t fail_attempts_;
  bool permanent_;
  mutable std::atomic<int> calls_{0};
};

/// Permanently rejects one specific prompt; any batch containing it fails
/// transiently (the backend reports "pass failed", not which stream), a
/// singleton pass of it fails permanently. Mirrors the coder model's
/// batched fault semantics so splitting is what isolates the poison.
class PoisonedModel final : public LanguageModel {
 public:
  explicit PoisonedModel(std::string poisoned)
      : poisoned_(std::move(poisoned)) {}

  std::string name() const override { return "poisoned-model"; }

  Completion generate(const std::string& prompt,
                      const GenerationParams& params) const override {
    (void)params;
    if (prompt == poisoned_) {
      throw PermanentModelError("poisoned: refused");
    }
    Completion completion;
    completion.text = "ok:" + prompt;
    completion.prompt_tokens = prompt.size();
    completion.completion_tokens = 2;
    completion.latency_seconds = 0.1;
    return completion;
  }

  std::vector<Completion> generate_batch(
      const std::vector<std::string>& prompts,
      const GenerationParams& params) const override {
    bool poisoned = false;
    for (const std::string& prompt : prompts) {
      poisoned = poisoned || prompt == poisoned_;
    }
    if (poisoned && prompts.size() > 1) {
      throw TransientModelError("poisoned: batch pass failed");
    }
    return LanguageModel::generate_batch(prompts, params);
  }

 private:
  std::string poisoned_;
};

/// Fails while `failing` is true; recovers the moment it is cleared.
class SwitchableModel final : public LanguageModel {
 public:
  std::string name() const override { return "switchable-model"; }

  Completion generate(const std::string& prompt,
                      const GenerationParams& params) const override {
    (void)params;
    if (failing.load(std::memory_order_relaxed)) {
      throw TransientModelError("switchable: failing");
    }
    Completion completion;
    completion.text = "ok:" + prompt;
    completion.prompt_tokens = prompt.size();
    completion.completion_tokens = 1;
    completion.latency_seconds = 0.05;
    return completion;
  }

  std::atomic<bool> failing{true};
};

RetryPolicy fast_retries(std::uint32_t max_attempts) {
  RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.base_backoff_us = 50;
  retry.max_backoff_us = 200;
  retry.jitter_us = 20;
  return retry;
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, DeterministicAndSeedSensitive) {
  FaultPlanConfig config;
  config.transient_rate = 0.3;
  config.permanent_rate = 0.1;
  config.slow_rate = 0.2;
  const FaultPlan plan(config);
  const FaultPlan same(config);
  config.seed ^= 0x1234;
  const FaultPlan reseeded(config);

  bool any_difference = false;
  for (std::uint64_t hash = 1; hash <= 500; ++hash) {
    for (std::uint32_t attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(plan.decide(hash, attempt), same.decide(hash, attempt));
      any_difference = any_difference ||
                       plan.decide(hash, attempt) !=
                           reseeded.decide(hash, attempt);
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlanTest, PermanentFaultsPersistAcrossAttempts) {
  FaultPlanConfig config;
  config.permanent_rate = 0.2;
  const FaultPlan plan(config);
  std::size_t permanents = 0;
  for (std::uint64_t hash = 1; hash <= 400; ++hash) {
    if (plan.decide(hash, 0) != FaultKind::kPermanent) continue;
    ++permanents;
    for (std::uint32_t attempt = 1; attempt < 6; ++attempt) {
      EXPECT_EQ(plan.decide(hash, attempt), FaultKind::kPermanent);
    }
  }
  EXPECT_GT(permanents, 0u);
}

TEST(FaultPlanTest, TransientFaultsReRollPerAttempt) {
  FaultPlanConfig config;
  config.transient_rate = 0.5;
  const FaultPlan plan(config);
  // With a 50% per-attempt rate, a faulted request whose every retry also
  // faults across 8 attempts would be a 1-in-256 event per request; over
  // 200 requests at least one transient must clear on a retry.
  bool cleared = false;
  for (std::uint64_t hash = 1; hash <= 200 && !cleared; ++hash) {
    if (plan.decide(hash, 0) != FaultKind::kTransient) continue;
    for (std::uint32_t attempt = 1; attempt < 8; ++attempt) {
      if (plan.decide(hash, attempt) == FaultKind::kNone) {
        cleared = true;
        break;
      }
    }
  }
  EXPECT_TRUE(cleared);
}

TEST(FaultPlanTest, ZeroRatesInjectNothingAndStatsCount) {
  const FaultPlan quiet;
  for (std::uint64_t hash = 1; hash <= 100; ++hash) {
    EXPECT_EQ(quiet.decide(hash, 0), FaultKind::kNone);
  }
  const FaultStats none = quiet.stats();
  EXPECT_EQ(none.transient + none.permanent + none.slow, 0u);

  FaultPlanConfig config;
  config.transient_rate = 1.0;
  const FaultPlan noisy(config);
  for (std::uint64_t hash = 1; hash <= 10; ++hash) {
    EXPECT_EQ(noisy.decide(hash, 0), FaultKind::kTransient);
  }
  EXPECT_EQ(noisy.stats().transient, 10u);
}

TEST(FaultsTest, KindNamesAndRetryability) {
  EXPECT_STREQ(failure_kind_name(FailureKind::kTransient), "transient");
  EXPECT_STREQ(failure_kind_name(FailureKind::kPermanent), "permanent");
  EXPECT_STREQ(failure_kind_name(FailureKind::kTimeout), "timeout");
  EXPECT_STREQ(failure_kind_name(FailureKind::kOverflow), "overflow");
  EXPECT_STREQ(failure_kind_name(FailureKind::kBreaker), "breaker");
  EXPECT_STREQ(failure_kind_name(FailureKind::kShutdown), "shutdown");
  EXPECT_STREQ(failure_kind_name(FailureKind::kOther), "other");

  EXPECT_TRUE(retryable(FailureKind::kTransient));
  EXPECT_TRUE(retryable(FailureKind::kBreaker));
  EXPECT_FALSE(retryable(FailureKind::kPermanent));
  EXPECT_FALSE(retryable(FailureKind::kTimeout));
  EXPECT_FALSE(retryable(FailureKind::kOverflow));
  EXPECT_FALSE(retryable(FailureKind::kShutdown));
  EXPECT_FALSE(retryable(FailureKind::kOther));
}

// ---------------------------------------------------------------------------
// Fault injection in the simulated model
// ---------------------------------------------------------------------------

TEST(FaultsTest, CoderModelInjectsAndStaysByteIdentical) {
  CoderModelConfig clean_config;
  const SimulatedCoderModel clean(clean_config);

  CoderModelConfig faulty_config;
  FaultPlanConfig plan;
  plan.transient_rate = 0.4;
  faulty_config.faults = std::make_shared<FaultPlan>(plan);
  const SimulatedCoderModel faulty(faulty_config);

  GenerationParams params;
  std::size_t faulted = 0;
  std::size_t served = 0;
  for (int i = 0; i < 40; ++i) {
    const std::string prompt =
        "Judge testcase number " + std::to_string(i) + " please.";
    try {
      const Completion completion = faulty.generate(prompt, params);
      // A served completion is byte-identical to the fault-free model's:
      // fault draws never touch the judgment RNG.
      EXPECT_EQ(completion.text, clean.generate(prompt, params).text);
      ++served;
    } catch (const TransientModelError&) {
      ++faulted;
    }
  }
  EXPECT_GT(faulted, 0u);
  EXPECT_GT(served, 0u);
  EXPECT_EQ(faulty_config.faults->stats().transient, faulted);
}

TEST(FaultsTest, CoderModelSlowFaultInflatesLatencyOnly) {
  CoderModelConfig slow_config;
  FaultPlanConfig plan;
  plan.slow_rate = 1.0;
  plan.slow_latency_factor = 4.0;
  slow_config.faults = std::make_shared<FaultPlan>(plan);
  const SimulatedCoderModel slow(slow_config);
  const SimulatedCoderModel clean;

  const std::string prompt = "Judge this file: int main() { return 0; }";
  const Completion fast = clean.generate(prompt, {});
  const Completion trickled = slow.generate(prompt, {});
  EXPECT_EQ(trickled.text, fast.text);
  EXPECT_NEAR(trickled.latency_seconds, 4.0 * fast.latency_seconds, 1e-12);
}

// ---------------------------------------------------------------------------
// ModelClient retries
// ---------------------------------------------------------------------------

TEST(RetryTest, TransientFailureRetriedToSuccess) {
  auto model = std::make_shared<FlakyModel>(2);
  ModelClient client(model, 1, 0, {}, fast_retries(4));
  const Completion completion = client.complete("hello");
  EXPECT_EQ(completion.text, "ok:hello");
  EXPECT_EQ(completion.attempts, 3u);
  EXPECT_EQ(model->calls(), 3);

  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.failed_requests, 0u);
  EXPECT_EQ(stats.retries, 2u);
  std::uint64_t hist_total = 0;
  for (const std::uint64_t bucket : stats.retry_latency_hist) {
    hist_total += bucket;
  }
  EXPECT_EQ(hist_total, 1u);
}

TEST(RetryTest, DefaultPolicyDoesNotRetry) {
  auto model = std::make_shared<FlakyModel>(1);
  ModelClient client(model);
  EXPECT_THROW(client.complete("hello"), TransientModelError);
  EXPECT_EQ(model->calls(), 1);
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.failed_requests, 1u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(RetryTest, PermanentFailureNotRetried) {
  auto model = std::make_shared<FlakyModel>(100, /*permanent=*/true);
  ModelClient client(model, 1, 0, {}, fast_retries(5));
  try {
    client.complete("hello");
    FAIL() << "expected PermanentModelError";
  } catch (const PermanentModelError& e) {
    EXPECT_EQ(e.kind(), FailureKind::kPermanent);
    EXPECT_EQ(e.attempts(), 1u);
  }
  EXPECT_EQ(model->calls(), 1);
  EXPECT_EQ(client.stats().retries, 0u);
}

TEST(RetryTest, BudgetExhaustionReportsAttempts) {
  auto model = std::make_shared<FlakyModel>(100);
  ModelClient client(model, 1, 0, {}, fast_retries(3));
  try {
    client.complete("hello");
    FAIL() << "expected TransientModelError";
  } catch (const TransientModelError& e) {
    EXPECT_EQ(e.attempts(), 3u);
  }
  EXPECT_EQ(model->calls(), 3);
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.failed_requests, 1u);
  EXPECT_EQ(stats.retries, 2u);
}

TEST(RetryTest, FutureErrorAccessors) {
  auto model = std::make_shared<FlakyModel>(100);
  ModelClient client(model, 1, 0, {}, fast_retries(2));
  CompletionFuture future = client.submit("hello");
  EXPECT_TRUE(future.failed());
  EXPECT_NE(future.error(), nullptr);
  EXPECT_THROW((void)future.get(), TransientModelError);

  auto healthy = std::make_shared<FlakyModel>(0);
  ModelClient healthy_client(healthy);
  CompletionFuture served = healthy_client.submit("y");
  EXPECT_FALSE(served.failed());
  EXPECT_EQ(served.error(), nullptr);
}

TEST(RetryTest, FailedBatchSplitsToIsolateThePoisonedRequest) {
  auto model = std::make_shared<PoisonedModel>("poison");
  ModelClient client(model, 4, 0, {}, fast_retries(3));
  const std::vector<std::string> prompts = {"a", "poison", "b", "c"};
  const auto futures = client.submit_many(prompts);
  ASSERT_EQ(futures.size(), 4u);

  EXPECT_EQ(futures[0].get().text, "ok:a");
  EXPECT_EQ(futures[2].get().text, "ok:b");
  EXPECT_EQ(futures[3].get().text, "ok:c");
  try {
    (void)futures[1].get();
    FAIL() << "expected PermanentModelError";
  } catch (const PermanentModelError& e) {
    // One shared pass failed transiently, then the singleton retry hit the
    // permanent refusal: two attempts spent on the poisoned request.
    EXPECT_EQ(e.attempts(), 2u);
  }

  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.batch_splits, 1u);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.failed_requests, 1u);
  // The healthy requests each took 2 attempts (failed shared pass + their
  // own singleton), the poisoned one 2: 4 extra passes beyond firsts.
  EXPECT_EQ(stats.retries, 4u);
  // Formed-batch telemetry counts the flush once, at its formed size.
  EXPECT_EQ(stats.formed_batches, 1u);
  EXPECT_EQ(stats.occupancy_hist[ClientStats::occupancy_bucket(4)], 1u);
}

TEST(RetryTest, DeadlineExpiryBecomesTimeout) {
  auto model = std::make_shared<FlakyModel>(100);
  RetryPolicy retry = fast_retries(50);
  retry.base_backoff_us = 4000;
  retry.max_backoff_us = 4000;
  retry.deadline_us = 10000;
  ModelClient client(model, 1, 0, {}, retry);
  try {
    client.complete("hello");
    FAIL() << "expected RequestTimeoutError";
  } catch (const RequestTimeoutError& e) {
    EXPECT_EQ(e.kind(), FailureKind::kTimeout);
    EXPECT_GT(e.attempts(), 0u);
    EXPECT_LT(e.attempts(), 50u);
  }
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.failed_requests, 1u);
}

// ---------------------------------------------------------------------------
// Bounded pending queue (S2)
// ---------------------------------------------------------------------------

TEST(BackpressureTest, UnboundedByDefault) {
  auto model = std::make_shared<FlakyModel>(0);
  ModelClient client(model);
  EXPECT_EQ(client.batcher().max_pending, 0u);
  const auto completions = client.complete_many(
      std::vector<std::string>(64, "p"));
  EXPECT_EQ(completions.size(), 64u);
  EXPECT_EQ(client.stats().pending_shed, 0u);
}

TEST(BackpressureTest, ShedPolicyFailsTheOverflowTail) {
  auto model = std::make_shared<FlakyModel>(0);
  BatcherConfig batcher;
  batcher.max_pending = 2;
  batcher.overflow = OverflowPolicy::kShed;
  ModelClient client(model, 2, 0, batcher);
  const auto futures =
      client.submit_many({"a", "b", "c", "d", "e"});
  ASSERT_EQ(futures.size(), 5u);
  EXPECT_EQ(futures[0].get().text, "ok:a");
  EXPECT_EQ(futures[1].get().text, "ok:b");
  for (std::size_t i = 2; i < 5; ++i) {
    try {
      (void)futures[i].get();
      FAIL() << "expected QueueOverflowError";
    } catch (const QueueOverflowError& e) {
      EXPECT_EQ(e.kind(), FailureKind::kOverflow);
    }
  }
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.pending_shed, 3u);
  EXPECT_EQ(stats.requests, 2u);
}

TEST(BackpressureTest, BlockPolicyAdmitsEverythingEventually) {
  auto model = std::make_shared<FlakyModel>(0);
  BatcherConfig batcher;
  batcher.max_pending = 2;
  batcher.overflow = OverflowPolicy::kBlock;
  batcher.window_us = 500;
  ModelClient client(model, 2, 0, batcher);
  // 8 requests through a queue bounded at 2: the submitter blocks until
  // the window flusher drains room; nothing is shed, nothing is lost.
  const auto futures = client.submit_many(
      std::vector<std::string>(8, "p"));
  for (const auto& future : futures) {
    EXPECT_EQ(future.get().text, "ok:p");
  }
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.pending_shed, 0u);
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_LE(stats.pending_high_water, 2u);
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

TEST(BreakerTest, OpensOnFailureRateAndFailsFast) {
  auto model = std::make_shared<SwitchableModel>();
  CircuitBreakerConfig breaker;
  breaker.enabled = true;
  breaker.window = 4;
  breaker.min_samples = 2;
  breaker.open_failure_rate = 0.5;
  breaker.cooldown_us = 60'000'000;  // effectively never half-opens here
  ModelClient client(model, 1, 0, {}, {}, breaker);

  EXPECT_EQ(client.breaker_state(), BreakerState::kClosed);
  EXPECT_THROW(client.complete("a"), TransientModelError);
  EXPECT_THROW(client.complete("b"), TransientModelError);
  EXPECT_EQ(client.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(client.stats().breaker_opens, 1u);

  // While open, requests fail fast without touching the model.
  model->failing.store(false);
  try {
    client.complete("c");
    FAIL() << "expected CircuitOpenError";
  } catch (const CircuitOpenError& e) {
    EXPECT_EQ(e.kind(), FailureKind::kBreaker);
  }
  EXPECT_GT(client.stats().breaker_rejected, 0u);
}

TEST(BreakerTest, HalfOpenProbeRecloses) {
  auto model = std::make_shared<SwitchableModel>();
  CircuitBreakerConfig breaker;
  breaker.enabled = true;
  breaker.window = 4;
  breaker.min_samples = 2;
  breaker.open_failure_rate = 0.5;
  breaker.cooldown_us = 0;  // next pass after opening is the probe
  ModelClient client(model, 1, 0, {}, {}, breaker);

  EXPECT_THROW(client.complete("a"), TransientModelError);
  EXPECT_THROW(client.complete("b"), TransientModelError);
  EXPECT_EQ(client.breaker_state(), BreakerState::kOpen);

  // Backend recovered: the half-open probe succeeds and recloses.
  model->failing.store(false);
  EXPECT_EQ(client.complete("c").text, "ok:c");
  EXPECT_EQ(client.breaker_state(), BreakerState::kClosed);
  // And a recovered breaker serves normally again.
  EXPECT_EQ(client.complete("d").text, "ok:d");
}

TEST(BreakerTest, BreakerRejectionIsRetryable) {
  auto model = std::make_shared<SwitchableModel>();
  CircuitBreakerConfig breaker;
  breaker.enabled = true;
  breaker.window = 4;
  breaker.min_samples = 2;
  breaker.open_failure_rate = 0.5;
  breaker.cooldown_us = 60'000'000;  // stays open for the whole test
  ModelClient client(model, 1, 0, {}, fast_retries(3), breaker);

  // "a" trips the breaker mid-retry (two transient failures open it), and
  // its own final attempt is already a fast rejection — the last failure
  // kind wins, so the request surfaces as CircuitOpenError.
  EXPECT_THROW(client.complete("a"), CircuitOpenError);
  EXPECT_EQ(client.breaker_state(), BreakerState::kOpen);
  const std::uint64_t retries_before = client.stats().retries;

  // A rejection from an open breaker is retryable: the request spends its
  // full attempt budget on fast rejections instead of failing on the first
  // one (so a breaker that recloses mid-backoff would be ridden through).
  try {
    client.complete("b");
    FAIL() << "expected CircuitOpenError";
  } catch (const CircuitOpenError& e) {
    EXPECT_EQ(e.kind(), FailureKind::kBreaker);
    EXPECT_EQ(e.attempts(), 3u);
  }
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.retries, retries_before + 2u);
  EXPECT_GE(stats.breaker_rejected, 3u);
}

}  // namespace
}  // namespace llm4vv::llm
