// Asynchronous submission API coverage: CompletionFuture resolution,
// adaptive-batcher flush policies (immediate / full / window), cross-caller
// coalescing, params isolation, telemetry counters, and deterministic
// shutdown with unresolved futures.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "corpus/generator.hpp"
#include "judge/prompt.hpp"
#include "llm/client.hpp"
#include "llm/coder_model.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::llm {
namespace {

using frontend::Flavor;
using frontend::Language;

std::vector<std::string> sample_prompts(std::size_t count) {
  std::vector<std::string> prompts;
  prompts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    prompts.push_back(judge::direct_analysis_prompt(
        corpus::generate_one("saxpy_offload", Flavor::kOpenACC, Language::kC,
                             200 + i)
            .file));
  }
  return prompts;
}

// ---------------------------------------------------------------------------
// Equivalence with the blocking path
// ---------------------------------------------------------------------------

TEST(SubmitTest, SubmitGetMatchesCompleteByteForByte) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient async_client(model, 2);
  ModelClient blocking_client(model, 2);
  const auto prompts = sample_prompts(3);
  GenerationParams params;
  params.seed = 11;
  for (const auto& prompt : prompts) {
    const auto future = async_client.submit(prompt, params);
    const auto via_future = future.get();
    const auto via_blocking = blocking_client.complete(prompt, params);
    EXPECT_EQ(via_future.text, via_blocking.text);
    EXPECT_EQ(via_future.prompt_tokens, via_blocking.prompt_tokens);
    EXPECT_EQ(via_future.completion_tokens, via_blocking.completion_tokens);
    // Paper-mode pricing: a lone submission is its own flush of one,
    // priced exactly like the sequential call.
    EXPECT_DOUBLE_EQ(via_future.latency_seconds,
                     via_blocking.latency_seconds);
  }
}

TEST(SubmitTest, SubmitManyMatchesCompleteMany) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient async_client(model, 4);
  ModelClient blocking_client(model, 4);
  const auto prompts = sample_prompts(5);
  const auto futures = async_client.submit_many(prompts);
  const auto reference = blocking_client.complete_many(prompts);
  ASSERT_EQ(futures.size(), prompts.size());
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    const auto completion = futures[i].get();
    EXPECT_EQ(completion.text, reference[i].text) << i;
    EXPECT_DOUBLE_EQ(completion.latency_seconds,
                     reference[i].latency_seconds)
        << i;
    EXPECT_EQ(futures[i].flush_size(), prompts.size()) << i;
  }
}

TEST(SubmitTest, WindowZeroFlushesEverySubmissionImmediately) {
  ModelClient client(std::make_shared<const SimulatedCoderModel>(), 1);
  const auto prompts = sample_prompts(2);
  const auto a = client.submit(prompts[0]);
  EXPECT_TRUE(a.ready());  // flushed inside submit()
  const auto b = client.submit(prompts[1]);
  EXPECT_TRUE(b.ready());
  const auto stats = client.stats();
  EXPECT_EQ(stats.formed_batches, 2u);
  EXPECT_EQ(stats.flush_immediate, 2u);
  EXPECT_EQ(stats.flush_full, 0u);
  EXPECT_EQ(stats.flush_window, 0u);
  // Lone single submissions are plain requests, not batches.
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.occupancy_hist[ClientStats::occupancy_bucket(1)], 2u);
}

// ---------------------------------------------------------------------------
// Flush policies
// ---------------------------------------------------------------------------

TEST(AdaptiveBatcherTest, BatchFullFlushesBeforeWindowExpires) {
  BatcherConfig batcher;
  batcher.max_batch = 2;
  batcher.window_us = 60ull * 1000 * 1000;  // 60 s: window never fires here
  ModelClient client(std::make_shared<const SimulatedCoderModel>(), 2, 0,
                     batcher);
  const auto prompts = sample_prompts(2);

  const auto first = client.submit(prompts[0]);
  EXPECT_FALSE(first.ready());  // pending: 1 < max_batch, window far away
  EXPECT_EQ(client.pending_depth(), 1u);

  const auto second = client.submit(prompts[1]);  // fills the batch
  EXPECT_TRUE(first.ready());
  EXPECT_TRUE(second.ready());
  EXPECT_EQ(client.pending_depth(), 0u);

  const auto stats = client.stats();
  EXPECT_EQ(stats.formed_batches, 1u);
  EXPECT_EQ(stats.flush_full, 1u);
  EXPECT_EQ(stats.flush_window, 0u);
  // Two coalesced single submissions are a genuine batched pass.
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_prompts, 2u);
  EXPECT_EQ(stats.pending_high_water, 2u);
  EXPECT_EQ(stats.occupancy_hist[ClientStats::occupancy_bucket(2)], 1u);
  EXPECT_EQ(first.flush_size(), 2u);
}

TEST(AdaptiveBatcherTest, WindowFlushFiresWithoutFurtherArrivals) {
  BatcherConfig batcher;
  batcher.max_batch = 8;
  batcher.window_us = 2000;  // 2 ms
  ModelClient client(std::make_shared<const SimulatedCoderModel>(), 2, 0,
                     batcher);
  const auto prompts = sample_prompts(3);
  const auto futures = client.submit_many(prompts);
  // Nothing fills the batch; the flusher thread must resolve these at the
  // window deadline.
  for (const auto& future : futures) (void)future.get();
  const auto stats = client.stats();
  EXPECT_EQ(stats.formed_batches, 1u);
  EXPECT_EQ(stats.flush_window, 1u);
  EXPECT_EQ(stats.flush_full, 0u);
  EXPECT_EQ(stats.batched_prompts, 3u);
  EXPECT_EQ(futures[0].flush_size(), 3u);
}

TEST(AdaptiveBatcherTest, CrossCallerSubmissionsCoalesceIntoOnePass) {
  BatcherConfig batcher;
  batcher.max_batch = 4;
  batcher.window_us = 60ull * 1000 * 1000;
  ModelClient client(std::make_shared<const SimulatedCoderModel>(), 4, 0,
                     batcher);
  const auto prompts = sample_prompts(4);
  // Two separate submit_many "callers": neither fills the batch alone; the
  // second tops it up and the combined flush serves both.
  const auto first =
      client.submit_many({prompts[0], prompts[1]});
  EXPECT_FALSE(first[0].ready());
  const auto second =
      client.submit_many({prompts[2], prompts[3]});
  for (const auto& future : first) EXPECT_EQ(future.get().text.empty(), false);
  for (const auto& future : second) (void)future.get();
  const auto stats = client.stats();
  EXPECT_EQ(stats.formed_batches, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.max_batch, 4u);
  EXPECT_EQ(first[0].flush_size(), 4u);
  EXPECT_EQ(second[1].flush_size(), 4u);
}

TEST(AdaptiveBatcherTest, MaxBatchCapsOversizedSubmitMany) {
  BatcherConfig batcher;
  batcher.max_batch = 3;
  batcher.window_us = 0;
  ModelClient client(std::make_shared<const SimulatedCoderModel>(), 4, 0,
                     batcher);
  const auto prompts = sample_prompts(7);
  const auto completions = client.complete_many(prompts);
  ASSERT_EQ(completions.size(), 7u);
  const auto stats = client.stats();
  // 7 prompts with a 3-cap: passes of 3, 3, 1.
  EXPECT_EQ(stats.formed_batches, 3u);
  EXPECT_EQ(stats.max_batch, 3u);
  EXPECT_EQ(stats.requests, 7u);
  // Text must match the uncapped client prompt-for-prompt.
  ModelClient reference(std::make_shared<const SimulatedCoderModel>(), 4);
  const auto expected = reference.complete_many(prompts);
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(completions[i].text, expected[i].text) << i;
  }
}

TEST(AdaptiveBatcherTest, MixedParamsNeverShareAPass) {
  BatcherConfig batcher;
  batcher.max_batch = 8;
  batcher.window_us = 2000;
  ModelClient client(std::make_shared<const SimulatedCoderModel>(), 2, 0,
                     batcher);
  const auto prompts = sample_prompts(2);
  GenerationParams seed_a;
  seed_a.seed = 1;
  GenerationParams seed_b;
  seed_b.seed = 2;
  const auto fa = client.submit(prompts[0], seed_a);
  const auto fb = client.submit(prompts[1], seed_b);
  const auto ca = fa.get();
  const auto cb = fb.get();
  // A pass has one params set, so the two seeds must flush separately...
  EXPECT_EQ(client.stats().formed_batches, 2u);
  EXPECT_EQ(fa.flush_size(), 1u);
  EXPECT_EQ(fb.flush_size(), 1u);
  // ...and each completion must match its own seed's sequential result.
  ModelClient reference(std::make_shared<const SimulatedCoderModel>(), 2);
  EXPECT_EQ(ca.text, reference.complete(prompts[0], seed_a).text);
  EXPECT_EQ(cb.text, reference.complete(prompts[1], seed_b).text);
}

TEST(AdaptiveBatcherTest, MixedParamsDoNotFakeAFullFlush) {
  // Regression: the full trigger must count only the head equal-params
  // run — a lone stale request of other params must not be flushed early
  // (and mislabelled "full") just because requests it cannot share a pass
  // with piled up behind it.
  BatcherConfig batcher;
  batcher.max_batch = 4;
  batcher.window_us = 3000;
  ModelClient client(std::make_shared<const SimulatedCoderModel>(), 4, 0,
                     batcher);
  const auto prompts = sample_prompts(5);
  GenerationParams seed_a;
  seed_a.seed = 1;
  GenerationParams seed_b;
  seed_b.seed = 2;
  const auto head = client.submit(prompts[0], seed_a);
  const auto rest = client.submit_many(
      {prompts[1], prompts[2], prompts[3], prompts[4]}, seed_b);
  // Five pending, but no equal-params run of four at the head: nothing
  // may flush as "full"; both groups resolve via their windows.
  (void)head.get();
  for (const auto& future : rest) (void)future.get();
  const auto stats = client.stats();
  EXPECT_EQ(stats.flush_full, 0u);
  EXPECT_EQ(stats.flush_window, 2u);
  EXPECT_EQ(stats.formed_batches, 2u);
  EXPECT_EQ(head.flush_size(), 1u);
  EXPECT_EQ(rest[0].flush_size(), 4u);
}

// ---------------------------------------------------------------------------
// Shutdown & cancellation
// ---------------------------------------------------------------------------

TEST(AsyncShutdownTest, DestroyingClientFailsPendingFuturesDeterministically) {
  BatcherConfig batcher;
  batcher.max_batch = 100;
  batcher.window_us = 60ull * 1000 * 1000;  // nothing flushes on its own
  std::vector<CompletionFuture> futures;
  {
    ModelClient client(std::make_shared<const SimulatedCoderModel>(), 2, 0,
                       batcher);
    futures = client.submit_many(sample_prompts(3));
    EXPECT_FALSE(futures[0].ready());
  }  // destroyed with 3 pending
  for (const auto& future : futures) {
    EXPECT_TRUE(future.ready());  // failed counts as resolved
    EXPECT_THROW((void)future.get(), std::runtime_error);
  }
}

TEST(AsyncShutdownTest, ShutdownStressResolvesOrFailsEveryFuture) {
  // Many threads submit singles against a small full-trigger batch: some
  // flushes fire (futures carry completions), a remainder is still pending
  // when the client dies (futures carry the shutdown error). Every future
  // must end resolved — no waiter may hang, no future may stay limbo.
  BatcherConfig batcher;
  batcher.max_batch = 5;
  batcher.window_us = 60ull * 1000 * 1000;  // only full flushes fire
  auto model = std::make_shared<const SimulatedCoderModel>();
  const auto prompts = sample_prompts(4);
  std::vector<CompletionFuture> futures;
  std::mutex futures_mutex;
  {
    ModelClient client(model, 2, 0, batcher);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 8; ++i) {
          auto future = client.submit(prompts[static_cast<std::size_t>(t)]);
          std::lock_guard lock(futures_mutex);
          futures.push_back(std::move(future));
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }  // 32 submitted; 32 % 5 == 2 still pending at destruction
  ASSERT_EQ(futures.size(), 32u);
  int served = 0;
  int failed = 0;
  for (const auto& future : futures) {
    EXPECT_TRUE(future.ready());
    try {
      (void)future.get();
      ++served;
    } catch (const std::runtime_error&) {
      ++failed;
    }
  }
  EXPECT_EQ(served + failed, 32);
  EXPECT_GT(served, 0);  // full flushes fired before shutdown
  EXPECT_GT(failed, 0);  // the tail was failed deterministically
}

TEST(AsyncShutdownTest, InFlightFlushDrainsBeforeDestruction) {
  // A flush already executing when the destructor runs must complete and
  // fulfill its futures; only never-flushed requests fail.
  auto model = std::make_shared<const testutil::GatedModel>();
  BatcherConfig batcher;
  batcher.max_batch = 2;
  batcher.window_us = 60ull * 1000 * 1000;
  auto client = std::make_unique<ModelClient>(model, 2, 0, batcher);
  const auto prompts = sample_prompts(2);

  // Fill the batch from a worker thread: the full-trigger flush runs on
  // that thread and blocks at the model's gate.
  std::vector<CompletionFuture> futures;
  std::mutex futures_mutex;
  std::thread submitter([&] {
    auto submitted = client->submit_many(prompts);
    std::lock_guard lock(futures_mutex);
    futures = std::move(submitted);
  });
  model->wait_for_entry();

  std::thread destroyer([&] { client.reset(); });
  // Give the destructor a moment to start waiting on the active flush,
  // then open the gate.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  model->release();
  submitter.join();
  destroyer.join();

  std::lock_guard lock(futures_mutex);
  ASSERT_EQ(futures.size(), 2u);
  for (const auto& future : futures) {
    EXPECT_TRUE(future.ready());
    EXPECT_NO_THROW((void)future.get());  // served, not failed
  }
}

TEST(AsyncShutdownTest, InlineFlushNotifyCannotOutliveClient) {
  // Regression pin (TSan) for the shutdown handshake: the inline flush
  // that drops active_flushes_ to zero must broadcast flush_done_ while
  // batch_mutex_ is still held. Broadcast-after-unlock let the destructor
  // wake on the decrement, observe zero, finish, and free the condition
  // variable while the flushing thread was still inside the broadcast —
  // a use-after-free visible under -fsanitize=thread. Hammer the window:
  // repeated rounds of an inline full-trigger flush racing destruction,
  // with the gate released only once the destructor is already running.
  const auto prompt = sample_prompts(1)[0];
  for (int round = 0; round < 32; ++round) {
    auto model = std::make_shared<const testutil::GatedModel>();
    BatcherConfig batcher;
    batcher.max_batch = 1;  // every submit flushes inline on the caller
    batcher.window_us = 60ull * 1000 * 1000;
    auto client = std::make_unique<ModelClient>(model, 1, 0, batcher);
    std::thread submitter([&] { (void)client->submit(prompt); });
    model->wait_for_entry();
    std::thread destroyer([&] { client.reset(); });
    model->release();
    submitter.join();
    destroyer.join();
  }
}

TEST(AsyncShutdownTest, SubmitAfterShutdownBeginsFailsCleanly) {
  // Covered indirectly by the stress above; here the deterministic shape:
  // a client destroyed with nothing pending accepts no further traffic
  // (compile-time API sanity — the future from a dead client cannot be
  // produced, so this just pins that plain teardown is clean).
  BatcherConfig batcher;
  batcher.window_us = 1000;
  auto client = std::make_unique<ModelClient>(
      std::make_shared<const SimulatedCoderModel>(), 1, 0, batcher);
  const auto completion = client->complete(sample_prompts(1)[0]);
  EXPECT_FALSE(completion.text.empty());
  EXPECT_NO_THROW(client.reset());
}

namespace {
/// Always fails transiently; counts calls so the test can wait until the
/// flush is provably inside its retry loop.
class AlwaysTransientModel final : public LanguageModel {
 public:
  std::string name() const override { return "always-transient"; }
  Completion generate(const std::string& prompt,
                      const GenerationParams& params) const override {
    (void)prompt;
    (void)params;
    calls.fetch_add(1, std::memory_order_relaxed);
    throw TransientModelError("always failing");
  }
  mutable std::atomic<int> calls{0};
};
}  // namespace

TEST(AsyncShutdownTest, DestroyMidBackoffCancelsTheRetry) {
  // S1 regression: a flush parked in a retry backoff must not pin the
  // destructor for the rest of the backoff (here ~10 s per retry). The
  // dtor broadcasts shutdown, the backoff wait wakes, and the retry is
  // CANCELLED — its future fails with the distinct shutdown error, well
  // before the backoff could have elapsed.
  auto model = std::make_shared<AlwaysTransientModel>();
  RetryPolicy retry;
  retry.max_attempts = 10;
  retry.base_backoff_us = 10ull * 1000 * 1000;  // 10 s per backoff
  retry.max_backoff_us = 10ull * 1000 * 1000;

  auto client = std::make_unique<ModelClient>(model, 1, 0, BatcherConfig{},
                                              retry);
  // The submitter goes through a raw pointer captured before either thread
  // starts: the relaxed `calls` spin below carries no happens-before, so a
  // submitter-side read of the unique_ptr cell itself would race the
  // destroyer's reset() of that cell (TSan-caught). The ModelClient
  // object's own shutdown handshake is what this test exercises; the
  // pointer cell must stay single-owner.
  ModelClient* const raw_client = client.get();
  CompletionFuture future;
  std::mutex future_mutex;
  // window_us == 0: the submitter runs the flush inline, so once the model
  // has been called the submitter thread is heading into (or already
  // parked in) the first 10 s backoff.
  std::thread submitter([&] {
    auto submitted = raw_client->submit(sample_prompts(1)[0]);
    std::lock_guard lock(future_mutex);
    future = std::move(submitted);
  });
  while (model->calls.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const auto start = std::chrono::steady_clock::now();
  std::thread destroyer([&] { client.reset(); });
  destroyer.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(5))
      << "destructor slept out a retry backoff instead of cancelling it";
  submitter.join();

  std::lock_guard lock(future_mutex);
  ASSERT_TRUE(future.valid());
  EXPECT_TRUE(future.ready());
  EXPECT_LT(model->calls.load(std::memory_order_relaxed), 10);
  try {
    (void)future.get();
    FAIL() << "expected ClientShutdownError";
  } catch (const ClientShutdownError& e) {
    EXPECT_EQ(e.kind(), FailureKind::kShutdown);
  }
}

// ---------------------------------------------------------------------------
// Occupancy histogram buckets: the seven fixed edges are a documented
// contract (client.hpp header comment, docs/ASYNC_API.md) — bench JSON and
// PipelineResult::judge_occupancy_hist reuse them, so moving an edge is a
// silent telemetry break. Pin every boundary.
// ---------------------------------------------------------------------------

TEST(OccupancyBucketTest, EdgesArePinned) {
  // bucket:    0    1    2      3      4       5        6
  // sizes:     1    2    3-4    5-8    9-16    17-32    33+
  EXPECT_EQ(ClientStats::occupancy_bucket(0), 0u);  // no real flush is 0
  EXPECT_EQ(ClientStats::occupancy_bucket(1), 0u);
  EXPECT_EQ(ClientStats::occupancy_bucket(2), 1u);
  EXPECT_EQ(ClientStats::occupancy_bucket(3), 2u);
  EXPECT_EQ(ClientStats::occupancy_bucket(4), 2u);
  EXPECT_EQ(ClientStats::occupancy_bucket(5), 3u);
  EXPECT_EQ(ClientStats::occupancy_bucket(8), 3u);
  EXPECT_EQ(ClientStats::occupancy_bucket(9), 4u);
  EXPECT_EQ(ClientStats::occupancy_bucket(16), 4u);
  EXPECT_EQ(ClientStats::occupancy_bucket(17), 5u);
  EXPECT_EQ(ClientStats::occupancy_bucket(32), 5u);
  EXPECT_EQ(ClientStats::occupancy_bucket(33), 6u);
  EXPECT_EQ(ClientStats::occupancy_bucket(1000), 6u);
}

TEST(OccupancyBucketTest, EveryBucketHasALabelAndLabelsMatchEdges) {
  EXPECT_STREQ(ClientStats::occupancy_bucket_label(0), "1");
  EXPECT_STREQ(ClientStats::occupancy_bucket_label(1), "2");
  EXPECT_STREQ(ClientStats::occupancy_bucket_label(2), "3-4");
  EXPECT_STREQ(ClientStats::occupancy_bucket_label(3), "5-8");
  EXPECT_STREQ(ClientStats::occupancy_bucket_label(4), "9-16");
  EXPECT_STREQ(ClientStats::occupancy_bucket_label(5), "17-32");
  EXPECT_STREQ(ClientStats::occupancy_bucket_label(6), "33+");
  EXPECT_STREQ(
      ClientStats::occupancy_bucket_label(ClientStats::kOccupancyBuckets),
      "?");
}

TEST(OccupancyBucketTest, FlushSizesLandInDocumentedBuckets) {
  // Three immediate single-prompt flushes + one batch of 6: buckets 0 and
  // 3 must carry exactly those counts.
  ModelClient client(std::make_shared<const SimulatedCoderModel>(),
                     /*max_concurrency=*/2);
  for (int i = 0; i < 3; ++i) {
    client.complete("single prompt " + std::to_string(i));
  }
  client.complete_many(sample_prompts(6));
  const ClientStats stats = client.stats();
  EXPECT_EQ(stats.occupancy_hist[0], 3u);
  EXPECT_EQ(stats.occupancy_hist[ClientStats::occupancy_bucket(6)], 1u);
  std::uint64_t total = 0;
  for (const auto count : stats.occupancy_hist) total += count;
  EXPECT_EQ(total, stats.formed_batches);
}

}  // namespace
}  // namespace llm4vv::llm
