// Batched-submission coverage: LanguageModel::generate_batch (default and
// SimulatedCoderModel's prefill-amortizing override), and
// ModelClient::complete_many (equivalence, stats, atomic slot acquisition,
// and the notify_all release regression).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "corpus/generator.hpp"
#include "judge/prompt.hpp"
#include "llm/client.hpp"
#include "llm/coder_model.hpp"

namespace llm4vv::llm {
namespace {

using frontend::Flavor;
using frontend::Language;

std::vector<std::string> sample_prompts(std::size_t count) {
  std::vector<std::string> prompts;
  prompts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    prompts.push_back(judge::direct_analysis_prompt(
        corpus::generate_one("saxpy_offload", Flavor::kOpenACC, Language::kC,
                             100 + i)
            .file));
  }
  return prompts;
}

// ---------------------------------------------------------------------------
// LanguageModel::generate_batch
// ---------------------------------------------------------------------------

/// Minimal model relying on the base-class generate_batch fallback.
class CountingModel final : public LanguageModel {
 public:
  std::string name() const override { return "counting-model"; }
  Completion generate(const std::string& prompt,
                      const GenerationParams& params) const override {
    calls.fetch_add(1);
    Completion completion;
    completion.text = "echo: " + prompt;
    completion.prompt_tokens = prompt.size();
    completion.completion_tokens = completion.text.size();
    completion.latency_seconds = 0.25;
    (void)params;
    return completion;
  }
  mutable std::atomic<int> calls{0};
};

TEST(GenerateBatchTest, DefaultImplementationLoopsOverGenerate) {
  const CountingModel model;
  const std::vector<std::string> prompts = {"a", "bb", "ccc"};
  const auto batch = model.generate_batch(prompts, {});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(model.calls.load(), 3);
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(batch[i].text, "echo: " + prompts[i]);
    EXPECT_DOUBLE_EQ(batch[i].latency_seconds, 0.25);
  }
}

TEST(GenerateBatchTest, SimulatedBatchMatchesSequentialTextAndTokens) {
  const SimulatedCoderModel model;
  const auto prompts = sample_prompts(6);
  GenerationParams params;
  params.seed = 9;
  const auto batch = model.generate_batch(prompts, params);
  ASSERT_EQ(batch.size(), prompts.size());
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    const auto sequential = model.generate(prompts[i], params);
    EXPECT_EQ(batch[i].text, sequential.text) << i;
    EXPECT_EQ(batch[i].prompt_tokens, sequential.prompt_tokens) << i;
    EXPECT_EQ(batch[i].completion_tokens, sequential.completion_tokens) << i;
  }
}

TEST(GenerateBatchTest, BatchOfOneIsPricedExactlyLikeGenerate) {
  const SimulatedCoderModel model;
  const auto prompts = sample_prompts(1);
  const auto batch = model.generate_batch(prompts, {});
  const auto sequential = model.generate(prompts[0], {});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].text, sequential.text);
  EXPECT_DOUBLE_EQ(batch[0].latency_seconds, sequential.latency_seconds);
}

TEST(GenerateBatchTest, BatchingAmortizesPrefillAndLockstepsDecode) {
  const SimulatedCoderModel model;
  const auto prompts = sample_prompts(8);
  const auto batch = model.generate_batch(prompts, {});
  double batched_sum = 0.0;
  double sequential_sum = 0.0;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    batched_sum += batch[i].latency_seconds;
    sequential_sum += model.generate(prompts[i], {}).latency_seconds;
    EXPECT_GT(batch[i].latency_seconds, 0.0);
  }
  // The batched pass must be meaningfully cheaper than eight sequential
  // calls (decode dominates, and it runs the streams in lockstep).
  EXPECT_LT(batched_sum, sequential_sum * 0.5);
}

TEST(GenerateBatchTest, EmptyBatchYieldsEmptyResult) {
  const SimulatedCoderModel model;
  EXPECT_TRUE(model.generate_batch({}, {}).empty());
}

TEST(GenerateBatchTest, PrefillFractionOneRemovesPrefillAmortization) {
  CoderModelConfig amortized;
  CoderModelConfig flat;
  flat.batch_prefill_fraction = 1.0;
  const SimulatedCoderModel cheap(amortized);
  const SimulatedCoderModel full(flat);
  const auto prompts = sample_prompts(4);
  double cheap_sum = 0.0;
  double full_sum = 0.0;
  for (const auto& completion : cheap.generate_batch(prompts, {})) {
    cheap_sum += completion.latency_seconds;
  }
  for (const auto& completion : full.generate_batch(prompts, {})) {
    full_sum += completion.latency_seconds;
  }
  EXPECT_LT(cheap_sum, full_sum);
}

// ---------------------------------------------------------------------------
// ModelClient::complete_many
// ---------------------------------------------------------------------------

TEST(CompleteManyTest, MatchesSequentialCompletions) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient batched_client(model, 4);
  ModelClient sequential_client(model, 4);
  const auto prompts = sample_prompts(5);
  GenerationParams params;
  params.seed = 3;

  const auto batch = batched_client.complete_many(prompts, params);
  ASSERT_EQ(batch.size(), prompts.size());
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    const auto sequential = sequential_client.complete(prompts[i], params);
    EXPECT_EQ(batch[i].text, sequential.text) << i;
    EXPECT_EQ(batch[i].prompt_tokens, sequential.prompt_tokens) << i;
    EXPECT_EQ(batch[i].completion_tokens, sequential.completion_tokens) << i;
  }
}

TEST(CompleteManyTest, RecordsOneBatchAndPerPromptTokens) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 4);
  const auto prompts = sample_prompts(5);
  const auto completions = client.complete_many(prompts);
  const auto stats = client.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_prompts, 5u);
  EXPECT_EQ(stats.max_batch, 5u);
  std::uint64_t prompt_tokens = 0;
  double gpu = 0.0;
  for (const auto& completion : completions) {
    prompt_tokens += completion.prompt_tokens;
    gpu += completion.latency_seconds;
  }
  EXPECT_EQ(stats.prompt_tokens, prompt_tokens);
  EXPECT_DOUBLE_EQ(stats.gpu_seconds, gpu);
}

TEST(CompleteManyTest, SequentialCompleteLeavesBatchCountersAtZero) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 2);
  client.complete(sample_prompts(1)[0]);
  const auto stats = client.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.batched_prompts, 0u);
}

TEST(CompleteManyTest, EmptyBatchIsANoOp) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 1);
  EXPECT_TRUE(client.complete_many({}).empty());
  EXPECT_EQ(client.stats().requests, 0u);
  EXPECT_EQ(client.stats().batches, 0u);
}

TEST(CompleteManyTest, BatchLargerThanConcurrencyCompletes) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 2);  // slots clamp to 2, batch of 8 still runs
  const auto prompts = sample_prompts(8);
  const auto completions = client.complete_many(prompts);
  EXPECT_EQ(completions.size(), 8u);
  EXPECT_EQ(client.stats().requests, 8u);
  EXPECT_EQ(client.stats().max_batch, 8u);
}

TEST(CompleteManyTest, TranscriptsRecordEachBatchedPrompt) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 2, /*transcript_capacity=*/8);
  const auto prompts = sample_prompts(3);
  client.complete_many(prompts);
  const auto transcripts = client.transcripts();
  ASSERT_EQ(transcripts.size(), 3u);
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(transcripts[i].prompt, prompts[i]);
  }
}

// Regression for the slot-release wakeup bug: with notify_one a release
// could be consumed by a multi-slot complete_many waiter whose predicate
// was still false, leaving a runnable single-slot waiter asleep. Mixing
// batched and single callers over a small slot pool must always drain.
TEST(CompleteManyTest, MixedBatchAndSingleCallersAllComplete) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 2);
  const auto prompts = sample_prompts(4);
  std::vector<std::thread> threads;
  std::atomic<int> completed{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&client, &prompts, &completed, t] {
      for (int i = 0; i < 6; ++i) {
        if ((t + i) % 2 == 0) {
          client.complete_many(prompts);
        } else {
          client.complete(prompts[0]);
        }
        completed.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(completed.load(), 24);
  // 12 batched calls x 4 prompts + 12 singles.
  EXPECT_EQ(client.stats().requests, 12u * 4u + 12u);
  EXPECT_EQ(client.stats().batches, 12u);
}

}  // namespace
}  // namespace llm4vv::llm
