// Batched-submission coverage: LanguageModel::generate_batch (default and
// SimulatedCoderModel's prefill-amortizing override), and
// ModelClient::complete_many (equivalence, stats, atomic slot acquisition,
// and the notify_all release regression).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "corpus/generator.hpp"
#include "judge/prompt.hpp"
#include "llm/client.hpp"
#include "llm/coder_model.hpp"

namespace llm4vv::llm {
namespace {

using frontend::Flavor;
using frontend::Language;

std::vector<std::string> sample_prompts(std::size_t count) {
  std::vector<std::string> prompts;
  prompts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    prompts.push_back(judge::direct_analysis_prompt(
        corpus::generate_one("saxpy_offload", Flavor::kOpenACC, Language::kC,
                             100 + i)
            .file));
  }
  return prompts;
}

// ---------------------------------------------------------------------------
// LanguageModel::generate_batch
// ---------------------------------------------------------------------------

/// Minimal model relying on the base-class generate_batch fallback.
class CountingModel final : public LanguageModel {
 public:
  std::string name() const override { return "counting-model"; }
  Completion generate(const std::string& prompt,
                      const GenerationParams& params) const override {
    calls.fetch_add(1);
    Completion completion;
    completion.text = "echo: " + prompt;
    completion.prompt_tokens = prompt.size();
    completion.completion_tokens = completion.text.size();
    completion.latency_seconds = 0.25;
    (void)params;
    return completion;
  }
  mutable std::atomic<int> calls{0};
};

TEST(GenerateBatchTest, DefaultImplementationLoopsOverGenerate) {
  const CountingModel model;
  const std::vector<std::string> prompts = {"a", "bb", "ccc"};
  const auto batch = model.generate_batch(prompts, {});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(model.calls.load(), 3);
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(batch[i].text, "echo: " + prompts[i]);
    EXPECT_DOUBLE_EQ(batch[i].latency_seconds, 0.25);
  }
}

TEST(GenerateBatchTest, SimulatedBatchMatchesSequentialTextAndTokens) {
  const SimulatedCoderModel model;
  const auto prompts = sample_prompts(6);
  GenerationParams params;
  params.seed = 9;
  const auto batch = model.generate_batch(prompts, params);
  ASSERT_EQ(batch.size(), prompts.size());
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    const auto sequential = model.generate(prompts[i], params);
    EXPECT_EQ(batch[i].text, sequential.text) << i;
    EXPECT_EQ(batch[i].prompt_tokens, sequential.prompt_tokens) << i;
    EXPECT_EQ(batch[i].completion_tokens, sequential.completion_tokens) << i;
  }
}

TEST(GenerateBatchTest, BatchOfOneIsPricedExactlyLikeGenerate) {
  const SimulatedCoderModel model;
  const auto prompts = sample_prompts(1);
  const auto batch = model.generate_batch(prompts, {});
  const auto sequential = model.generate(prompts[0], {});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].text, sequential.text);
  EXPECT_DOUBLE_EQ(batch[0].latency_seconds, sequential.latency_seconds);
}

TEST(GenerateBatchTest, BatchingAmortizesPrefillAndLockstepsDecode) {
  const SimulatedCoderModel model;
  const auto prompts = sample_prompts(8);
  const auto batch = model.generate_batch(prompts, {});
  double batched_sum = 0.0;
  double sequential_sum = 0.0;
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    batched_sum += batch[i].latency_seconds;
    sequential_sum += model.generate(prompts[i], {}).latency_seconds;
    EXPECT_GT(batch[i].latency_seconds, 0.0);
  }
  // The batched pass must be meaningfully cheaper than eight sequential
  // calls (decode dominates, and it runs the streams in lockstep).
  EXPECT_LT(batched_sum, sequential_sum * 0.5);
}

TEST(GenerateBatchTest, EmptyBatchYieldsEmptyResult) {
  const SimulatedCoderModel model;
  EXPECT_TRUE(model.generate_batch({}, {}).empty());
}

TEST(GenerateBatchTest, PrefillFractionOneRemovesPrefillAmortization) {
  CoderModelConfig amortized;
  CoderModelConfig flat;
  flat.batch_prefill_fraction = 1.0;
  const SimulatedCoderModel cheap(amortized);
  const SimulatedCoderModel full(flat);
  const auto prompts = sample_prompts(4);
  double cheap_sum = 0.0;
  double full_sum = 0.0;
  for (const auto& completion : cheap.generate_batch(prompts, {})) {
    cheap_sum += completion.latency_seconds;
  }
  for (const auto& completion : full.generate_batch(prompts, {})) {
    full_sum += completion.latency_seconds;
  }
  EXPECT_LT(cheap_sum, full_sum);
}

// ---------------------------------------------------------------------------
// ModelClient::complete_many
// ---------------------------------------------------------------------------

TEST(CompleteManyTest, MatchesSequentialCompletions) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient batched_client(model, 4);
  ModelClient sequential_client(model, 4);
  const auto prompts = sample_prompts(5);
  GenerationParams params;
  params.seed = 3;

  const auto batch = batched_client.complete_many(prompts, params);
  ASSERT_EQ(batch.size(), prompts.size());
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    const auto sequential = sequential_client.complete(prompts[i], params);
    EXPECT_EQ(batch[i].text, sequential.text) << i;
    EXPECT_EQ(batch[i].prompt_tokens, sequential.prompt_tokens) << i;
    EXPECT_EQ(batch[i].completion_tokens, sequential.completion_tokens) << i;
  }
}

TEST(CompleteManyTest, RecordsOneBatchAndPerPromptTokens) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 4);
  const auto prompts = sample_prompts(5);
  const auto completions = client.complete_many(prompts);
  const auto stats = client.stats();
  EXPECT_EQ(stats.requests, 5u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_prompts, 5u);
  EXPECT_EQ(stats.max_batch, 5u);
  std::uint64_t prompt_tokens = 0;
  double gpu = 0.0;
  for (const auto& completion : completions) {
    prompt_tokens += completion.prompt_tokens;
    gpu += completion.latency_seconds;
  }
  EXPECT_EQ(stats.prompt_tokens, prompt_tokens);
  EXPECT_DOUBLE_EQ(stats.gpu_seconds, gpu);
}

TEST(CompleteManyTest, SequentialCompleteLeavesBatchCountersAtZero) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 2);
  client.complete(sample_prompts(1)[0]);
  const auto stats = client.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.batched_prompts, 0u);
}

TEST(CompleteManyTest, EmptyBatchIsANoOp) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 1);
  EXPECT_TRUE(client.complete_many({}).empty());
  EXPECT_EQ(client.stats().requests, 0u);
  EXPECT_EQ(client.stats().batches, 0u);
}

TEST(CompleteManyTest, BatchLargerThanConcurrencyCompletes) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 2);  // slots clamp to 2, batch of 8 still runs
  const auto prompts = sample_prompts(8);
  const auto completions = client.complete_many(prompts);
  EXPECT_EQ(completions.size(), 8u);
  EXPECT_EQ(client.stats().requests, 8u);
  EXPECT_EQ(client.stats().max_batch, 8u);
}

TEST(CompleteManyTest, TranscriptsRecordEachBatchedPrompt) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 2, /*transcript_capacity=*/8);
  const auto prompts = sample_prompts(3);
  client.complete_many(prompts);
  const auto transcripts = client.transcripts();
  ASSERT_EQ(transcripts.size(), 3u);
  for (std::size_t i = 0; i < prompts.size(); ++i) {
    EXPECT_EQ(transcripts[i].prompt, prompts[i]);
  }
}

// ---------------------------------------------------------------------------
// FIFO slot fairness
// ---------------------------------------------------------------------------

/// A model that records the order generate() calls start in and can hold
/// them at a gate until the test releases it.
class OrderingModel final : public LanguageModel {
 public:
  std::string name() const override { return "ordering-model"; }
  Completion generate(const std::string& prompt,
                      const GenerationParams& params) const override {
    {
      std::unique_lock lock(mutex_);
      order_.push_back(prompt);
      started_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    Completion completion;
    completion.text = "ok";
    completion.prompt_tokens = prompt.size();
    completion.completion_tokens = 2;
    completion.latency_seconds = 0.01;
    (void)params;
    return completion;
  }
  std::vector<Completion> generate_batch(
      const std::vector<std::string>& prompts,
      const GenerationParams& params) const override {
    {
      std::unique_lock lock(mutex_);
      for (const auto& prompt : prompts) order_.push_back(prompt);
      started_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    std::vector<Completion> completions;
    for (const auto& prompt : prompts) {
      Completion completion;
      completion.text = "ok";
      completion.prompt_tokens = prompt.size();
      completion.completion_tokens = 2;
      completion.latency_seconds = 0.01;
      completions.push_back(completion);
    }
    (void)params;
    return completions;
  }
  void wait_for_started(std::size_t count) const {
    std::unique_lock lock(mutex_);
    started_cv_.wait(lock,
                     [this, count] { return order_.size() >= count; });
  }
  void release() const {
    {
      std::lock_guard lock(mutex_);
      released_ = true;
    }
    release_cv_.notify_all();
  }
  std::vector<std::string> order() const {
    std::lock_guard lock(mutex_);
    return order_;
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable started_cv_;
  mutable std::condition_variable release_cv_;
  mutable std::vector<std::string> order_;
  mutable bool released_ = false;
};

// The starvation regression the FIFO ticket fixes: a wide complete_many
// waiter must run before single-slot callers that arrived after it, no
// matter how many of them keep the pool churning. The gated model holds an
// early single call in flight; the wide batch queues behind it; a wave of
// later singles queues behind the batch. When the gate opens, the recorded
// start order must put both batch prompts before every late single —
// bounding the wide waiter's wait by the work already queued ahead of it.
TEST(SlotFairnessTest, WideWaiterIsNotStarvedBySingleSlotStream) {
  auto model = std::make_shared<const OrderingModel>();
  ModelClient client(model, 2);

  std::thread early([&client] { client.complete("early"); });
  model->wait_for_started(1);  // "early" holds one of the two slots

  std::thread wide([&client] {
    client.complete_many({"batch-a", "batch-b"});  // needs both slots
  });
  // The batch has taken its ticket once it is queued for slots.
  while (client.queue_depth() < 1) std::this_thread::yield();

  std::vector<std::thread> singles;
  for (int i = 0; i < 8; ++i) {
    singles.emplace_back(
        [&client, i] { client.complete("late-" + std::to_string(i)); });
    while (client.queue_depth() < static_cast<std::size_t>(2 + i)) {
      std::this_thread::yield();
    }
  }

  model->release();
  early.join();
  wide.join();
  for (auto& thread : singles) thread.join();

  const auto order = model->order();
  ASSERT_EQ(order.size(), 11u);  // early + 2 batch + 8 singles
  std::size_t batch_last = 0;
  std::size_t single_first = order.size();
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == "batch-a" || order[i] == "batch-b") {
      batch_last = std::max(batch_last, i);
    } else if (order[i] != "early") {
      single_first = std::min(single_first, i);
    }
  }
  EXPECT_LT(batch_last, single_first)
      << "a late single-slot caller overtook the queued batch";
}

// Regression for the slot-release wakeup bug: with notify_one a release
// could be consumed by a multi-slot complete_many waiter whose predicate
// was still false, leaving a runnable single-slot waiter asleep. Mixing
// batched and single callers over a small slot pool must always drain.
TEST(CompleteManyTest, MixedBatchAndSingleCallersAllComplete) {
  auto model = std::make_shared<const SimulatedCoderModel>();
  ModelClient client(model, 2);
  const auto prompts = sample_prompts(4);
  std::vector<std::thread> threads;
  std::atomic<int> completed{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&client, &prompts, &completed, t] {
      for (int i = 0; i < 6; ++i) {
        if ((t + i) % 2 == 0) {
          client.complete_many(prompts);
        } else {
          client.complete(prompts[0]);
        }
        completed.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(completed.load(), 24);
  // 12 batched calls x 4 prompts + 12 singles.
  EXPECT_EQ(client.stats().requests, 12u * 4u + 12u);
  EXPECT_EQ(client.stats().batches, 12u);
}

}  // namespace
}  // namespace llm4vv::llm
