#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>

#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/jsonl.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace llm4vv::support {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowZeroThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(RngTest, NextInInclusiveBounds) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.next_in(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(RngTest, NextInReversedThrows) {
  Rng rng(3);
  EXPECT_THROW(rng.next_in(1, 0), std::invalid_argument);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkIndependentOfParentContinuation) {
  Rng a(21);
  Rng fork = a.fork();
  // The fork and the parent's subsequent stream should differ.
  EXPECT_NE(fork.next_u64(), a.next_u64());
}

TEST(RngTest, PickThrowsOnEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(1);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int p = rng.pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

TEST(HashTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringsTest, SplitSingleField) {
  EXPECT_EQ(split("abc", ',').size(), 1u);
}

TEST(StringsTest, SplitLinesHandlesCrLf) {
  const auto lines = split_lines("a\r\nb\nc\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[2], "c");
}

TEST(StringsTest, SplitLinesNoTrailingEmpty) {
  EXPECT_EQ(split_lines("x\n").size(), 1u);
  EXPECT_EQ(split_lines("x").size(), 1u);
  EXPECT_EQ(split_lines("").size(), 0u);
}

TEST(StringsTest, SplitWhitespaceCollapsesRuns) {
  const auto words = split_whitespace("  a\t\tb  c ");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "a");
  EXPECT_EQ(words[2], "c");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringsTest, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("#pragma acc", "#pragma"));
  EXPECT_FALSE(starts_with("#prag", "#pragma"));
  EXPECT_TRUE(ends_with("file.c", ".c"));
  EXPECT_FALSE(ends_with("c", ".c"));
}

TEST(StringsTest, ContainsAndIcontains) {
  EXPECT_TRUE(contains("Hello World", "o W"));
  EXPECT_FALSE(contains("abc", "x"));
  EXPECT_TRUE(icontains("Test PASSED", "passed"));
  EXPECT_TRUE(icontains("FAILED", "failed"));
  EXPECT_FALSE(icontains("short", "longer-needle"));
  EXPECT_TRUE(icontains("anything", ""));
}

TEST(StringsTest, ReplaceAllEveryOccurrence) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("no hits", "x", "y"), "no hits");
  EXPECT_EQ(replace_all("{V} + {V}", "{V}", "sum"), "sum + sum");
}

TEST(StringsTest, IndentEachLine) {
  EXPECT_EQ(indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b");  // empty lines untouched
}

TEST(StringsTest, FormatFixedAndPercent) {
  EXPECT_EQ(format_fixed(0.5666, 2), "0.57");
  EXPECT_EQ(format_percent(0.5663), "57%");
  EXPECT_EQ(format_percent(1.0), "100%");
  EXPECT_EQ(format_percent(0.0), "0%");
}

// ---------------------------------------------------------------------------
// TextTable
// ---------------------------------------------------------------------------

TEST(TableTest, RendersHeaderAndRows) {
  TextTable t({"k", "v"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TableTest, AlignmentMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.set_alignments({Align::kLeft}), std::invalid_argument);
}

TEST(TableTest, RuleDoesNotCountAsRow) {
  TextTable t({"a"});
  t.add_row({"x"});
  t.add_rule();
  t.add_row({"y"});
  EXPECT_EQ(t.row_count(), 2u);
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, QuotesSpecialFields) {
  EXPECT_EQ(csv_quote("plain"), "plain");
  EXPECT_EQ(csv_quote("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, RowWidthEnforced) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), std::invalid_argument);
  w.add_row({"1", "2"});
  EXPECT_EQ(w.row_count(), 1u);
}

struct CsvRoundTripCase {
  std::vector<std::string> row;
};

class CsvRoundTripTest : public ::testing::TestWithParam<CsvRoundTripCase> {};

TEST_P(CsvRoundTripTest, WriteThenParseIsIdentity) {
  CsvWriter w({"c1", "c2", "c3"});
  w.add_row(GetParam().row);
  const auto rows = csv_parse(w.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], GetParam().row);
}

INSTANTIATE_TEST_SUITE_P(
    TrickyFields, CsvRoundTripTest,
    ::testing::Values(
        CsvRoundTripCase{{"a", "b", "c"}},
        CsvRoundTripCase{{"with,comma", "with\"quote", "with\nnewline"}},
        CsvRoundTripCase{{"", "", ""}},
        CsvRoundTripCase{{" leading", "trailing ", "\"quoted\""}},
        CsvRoundTripCase{{"multi\nline\ntext", ",", "\""}}));

// ---------------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------------

TEST(JsonTest, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonTest, BuildsObjectInOrder) {
  JsonObject obj;
  obj.field("name", std::string("x")).field("count", std::int64_t{3})
      .field("ok", true).field("ratio", 0.5);
  EXPECT_EQ(obj.str(),
            "{\"name\":\"x\",\"count\":3,\"ok\":true,\"ratio\":0.5}");
}

TEST(JsonTest, NonFiniteBecomesNull) {
  JsonObject obj;
  obj.field("bad", std::nan(""));
  EXPECT_EQ(obj.str(), "{\"bad\":null}");
}

// ---------------------------------------------------------------------------
// CLI
// ---------------------------------------------------------------------------

TEST(CliTest, ParsesFlagForms) {
  // Note: a bare `--flag` followed by a non-flag word consumes the word as
  // its value, so the boolean form must be last or followed by a flag.
  const char* argv[] = {"prog", "positional", "--name", "value", "--num=7",
                        "--flag"};
  CliArgs args(6, argv);
  EXPECT_EQ(args.get("name", ""), "value");
  EXPECT_EQ(args.get_int("num", 0), 7);
  EXPECT_TRUE(args.has("flag"));
  EXPECT_EQ(args.get("flag", ""), "true");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(CliTest, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get("missing", "default"), "default");
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
}

TEST(CliTest, BadIntegerThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  CliArgs args(2, argv);
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Stopwatch & log
// ---------------------------------------------------------------------------

TEST(StopwatchTest, TimeAdvancesMonotonically) {
  Stopwatch w;
  const double t1 = w.seconds();
  const double t2 = w.seconds();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0.0);
}

TEST(LogTest, LevelGateIsThreadSafeToToggle) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_info("suppressed");  // must not crash
  set_log_level(before);
}

}  // namespace
}  // namespace llm4vv::support
