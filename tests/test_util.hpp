#pragma once

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unistd.h>

#include "corpus/generator.hpp"
#include "directive/validator.hpp"
#include "frontend/fortran.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "llm/coder_model.hpp"
#include "toolchain/compiler.hpp"
#include "toolchain/executor.hpp"
#include "vm/interp.hpp"
#include "vm/lower.hpp"

namespace llm4vv::testutil {

/// Front-end a C/C++ source string (lex/parse/sema/validate); returns the
/// program and leaves diagnostics in `diags`.
inline frontend::Program analyze_source(
    const std::string& source, frontend::DiagnosticEngine& diags,
    frontend::Flavor flavor = frontend::Flavor::kOpenACC) {
  frontend::ParserOptions popts;
  popts.pragma_takes_statement = directive::pragma_takes_statement;
  const auto lexed = frontend::lex(source, diags);
  auto program = frontend::parse(lexed.tokens, diags, popts);
  if (!diags.has_errors()) {
    frontend::analyze(program, diags);
  }
  if (!diags.has_errors()) {
    directive::ValidatorOptions vopts;
    vopts.flavor = flavor;
    vopts.supported_version = 99;
    directive::validate_program(program, vopts, diags);
  }
  return program;
}

/// Compile and execute a C source string; throws on compile errors.
inline vm::ExecResult run_source(
    const std::string& source,
    frontend::Flavor flavor = frontend::Flavor::kOpenACC,
    const vm::ExecLimits& limits = {}) {
  frontend::DiagnosticEngine diags;
  auto program = analyze_source(source, diags, flavor);
  if (diags.has_errors()) {
    std::string message = "compile failed:";
    for (const auto& d : diags.diagnostics()) {
      message += " [line " + std::to_string(d.line) + "] " + d.message + ";";
    }
    throw std::runtime_error(message);
  }
  vm::LowerOptions lopts;
  lopts.flavor = flavor;
  const auto module = vm::lower(program, lopts);
  return vm::execute(module, limits);
}

/// A unique temp file per instance (pid + counter under the system temp
/// dir); the destructor removes it and its `.tmp` save sidecar. Shared by
/// the artifact-store and persistence test suites.
class TempFile {
 public:
  explicit TempFile(const char* tag) {
    static std::atomic<int> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("llm4vv_test_" + std::to_string(::getpid()) + "_" + tag + "_" +
              std::to_string(counter.fetch_add(1)) + ".jsonl"))
                .string();
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    std::filesystem::remove(path_ + ".tmp", ec);
  }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// A simulated coder model whose generate() calls block at a gate until
/// the test releases it — the standard way to deterministically park
/// workers behind an in-flight model call (the base-class generate_batch
/// loops over generate, so batched flushes gate too). Shared by the judge
/// dedup, async-client, and async-judge test suites.
class GatedModel final : public llm::LanguageModel {
 public:
  std::string name() const override { return inner_.name(); }
  llm::Completion generate(const std::string& prompt,
                           const llm::GenerationParams& params)
      const override {
    {
      std::unique_lock lock(mutex_);
      ++entered_;
      entered_cv_.notify_all();
      release_cv_.wait(lock, [this] { return released_; });
    }
    return inner_.generate(prompt, params);
  }
  /// Block until at least `count` generate() calls have reached the gate.
  void wait_for_entry(int count = 1) const {
    std::unique_lock lock(mutex_);
    entered_cv_.wait(lock, [this, count] { return entered_ >= count; });
  }
  /// Open the gate for every present and future call.
  void release() const {
    {
      std::lock_guard lock(mutex_);
      released_ = true;
    }
    release_cv_.notify_all();
  }
  /// Calls that have reached the gate so far.
  int entered() const {
    std::lock_guard lock(mutex_);
    return entered_;
  }

 private:
  llm::SimulatedCoderModel inner_;
  mutable std::mutex mutex_;
  mutable std::condition_variable entered_cv_;
  mutable std::condition_variable release_cv_;
  mutable int entered_ = 0;
  mutable bool released_ = false;
};

/// The corpus-generator knobs every suite-driving test sets: flavor, size,
/// and seed in one place, so corpus tests stay consistent as the suite
/// grows (remaining GeneratorConfig fields keep their defaults and can be
/// adjusted on the returned value).
inline corpus::GeneratorConfig corpus_config(frontend::Flavor flavor,
                                             std::size_t count,
                                             std::uint64_t seed) {
  corpus::GeneratorConfig config;
  config.flavor = flavor;
  config.count = count;
  config.seed = seed;
  return config;
}

/// A strictness-free compiler driver for validity testing.
inline toolchain::CompilerDriver clean_driver(frontend::Flavor flavor) {
  toolchain::CompilerConfig config = flavor == frontend::Flavor::kOpenACC
                                         ? toolchain::nvc_persona()
                                         : toolchain::clang_persona();
  config.strictness_reject_rate = 0.0;
  return toolchain::CompilerDriver(config);
}

}  // namespace llm4vv::testutil
