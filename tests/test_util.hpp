#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "directive/validator.hpp"
#include "frontend/fortran.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "frontend/sema.hpp"
#include "toolchain/compiler.hpp"
#include "toolchain/executor.hpp"
#include "vm/interp.hpp"
#include "vm/lower.hpp"

namespace llm4vv::testutil {

/// Front-end a C/C++ source string (lex/parse/sema/validate); returns the
/// program and leaves diagnostics in `diags`.
inline frontend::Program analyze_source(
    const std::string& source, frontend::DiagnosticEngine& diags,
    frontend::Flavor flavor = frontend::Flavor::kOpenACC) {
  frontend::ParserOptions popts;
  popts.pragma_takes_statement = directive::pragma_takes_statement;
  const auto lexed = frontend::lex(source, diags);
  auto program = frontend::parse(lexed.tokens, diags, popts);
  if (!diags.has_errors()) {
    frontend::analyze(program, diags);
  }
  if (!diags.has_errors()) {
    directive::ValidatorOptions vopts;
    vopts.flavor = flavor;
    vopts.supported_version = 99;
    directive::validate_program(program, vopts, diags);
  }
  return program;
}

/// Compile and execute a C source string; throws on compile errors.
inline vm::ExecResult run_source(
    const std::string& source,
    frontend::Flavor flavor = frontend::Flavor::kOpenACC,
    const vm::ExecLimits& limits = {}) {
  frontend::DiagnosticEngine diags;
  auto program = analyze_source(source, diags, flavor);
  if (diags.has_errors()) {
    std::string message = "compile failed:";
    for (const auto& d : diags.diagnostics()) {
      message += " [line " + std::to_string(d.line) + "] " + d.message + ";";
    }
    throw std::runtime_error(message);
  }
  vm::LowerOptions lopts;
  lopts.flavor = flavor;
  const auto module = vm::lower(program, lopts);
  return vm::execute(module, limits);
}

/// A strictness-free compiler driver for validity testing.
inline toolchain::CompilerDriver clean_driver(frontend::Flavor flavor) {
  toolchain::CompilerConfig config = flavor == frontend::Flavor::kOpenACC
                                         ? toolchain::nvc_persona()
                                         : toolchain::clang_persona();
  config.strictness_reject_rate = 0.0;
  return toolchain::CompilerDriver(config);
}

}  // namespace llm4vv::testutil
