#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "judge/judge.hpp"
#include "llm/coder_model.hpp"
#include "probing/mutation.hpp"
#include "support/rng.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::judge {
namespace {

using frontend::Flavor;
using frontend::Language;

frontend::SourceFile sample_file(Flavor flavor = Flavor::kOpenACC) {
  return corpus::generate_one("sum_reduction", flavor, Language::kC, 17)
      .file;
}

// ---------------------------------------------------------------------------
// Prompt builders (Listings 1-4 fidelity)
// ---------------------------------------------------------------------------

TEST(PromptTest, CriteriaBlockListsAllSixCriteria) {
  const auto block = criteria_block(Flavor::kOpenACC);
  for (const char* criterion :
       {"Syntax:", "Directive Appropriateness:", "Clause Correctness:",
        "Memory Management:", "Compliance:", "Logic:"}) {
    EXPECT_NE(block.find(criterion), std::string::npos) << criterion;
  }
  EXPECT_NE(block.find("OpenACC"), std::string::npos);
  EXPECT_EQ(block.find("OpenMP"), std::string::npos);
}

TEST(PromptTest, DirectPromptUsesCorrectIncorrectProtocol) {
  const auto prompt = direct_analysis_prompt(sample_file());
  EXPECT_NE(prompt.find("FINAL JUDGEMENT: correct"), std::string::npos);
  EXPECT_NE(prompt.find("FINAL JUDGEMENT: incorrect"), std::string::npos);
  EXPECT_EQ(prompt.find("Compiler return code"), std::string::npos);
  EXPECT_NE(prompt.find("Here is the code"), std::string::npos);
}

TEST(PromptTest, AgentDirectPromptQuotesToolOutputs) {
  const auto file = sample_file();
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled = driver.compile(file);
  const auto ran = toolchain::Executor().run(compiled.module);
  const auto prompt = agent_direct_prompt(file, compiled, ran);
  EXPECT_NE(prompt.find("FINAL JUDGEMENT: valid"), std::string::npos);
  EXPECT_NE(prompt.find("Compiler return code: 0"), std::string::npos);
  EXPECT_NE(prompt.find("Return code: 0"), std::string::npos);
  EXPECT_NE(prompt.find("Think step by step."), std::string::npos);
}

TEST(PromptTest, AgentIndirectPromptAsksForDescription) {
  const auto file = sample_file();
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled = driver.compile(file);
  const auto ran = toolchain::Executor().run(compiled.module);
  const auto prompt = agent_indirect_prompt(file, compiled, ran);
  EXPECT_NE(prompt.find("Describe what the below"), std::string::npos);
  EXPECT_NE(prompt.find("valid or invalid compiler test"),
            std::string::npos);
  EXPECT_NE(prompt.find("Here is the code for you to analyze"),
            std::string::npos);
}

TEST(PromptTest, FailedCompileShowsDiagnosticsInPrompt) {
  auto file = sample_file();
  file.content = "int main() { return ghost; }";
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled = driver.compile(file);
  const auto ran = toolchain::Executor().run(compiled.module);
  const auto prompt = agent_direct_prompt(file, compiled, ran);
  EXPECT_NE(prompt.find("Compiler return code: 2"), std::string::npos);
  EXPECT_NE(prompt.find("undeclared identifier"), std::string::npos);
  EXPECT_NE(prompt.find("could not be run"), std::string::npos);
}

TEST(PromptTest, BuildPromptDispatchesAndValidates) {
  const auto file = sample_file();
  EXPECT_NO_THROW(
      build_prompt(llm::PromptStyle::kDirectAnalysis, file, nullptr,
                   nullptr));
  EXPECT_THROW(build_prompt(llm::PromptStyle::kAgentDirect, file, nullptr,
                            nullptr),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Verdict parsing
// ---------------------------------------------------------------------------

struct VerdictCase {
  std::string completion;
  Verdict expected;
};

class VerdictParseTest : public ::testing::TestWithParam<VerdictCase> {};

TEST_P(VerdictParseTest, ParsesExpectedVerdict) {
  EXPECT_EQ(parse_verdict(GetParam().completion), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, VerdictParseTest,
    ::testing::Values(
        VerdictCase{"blah\nFINAL JUDGEMENT: valid\n", Verdict::kValid},
        VerdictCase{"FINAL JUDGEMENT: invalid", Verdict::kInvalid},
        VerdictCase{"FINAL JUDGEMENT: correct", Verdict::kValid},
        VerdictCase{"FINAL JUDGEMENT: incorrect", Verdict::kInvalid},
        VerdictCase{"final judgement:   VALID", Verdict::kValid},
        VerdictCase{"Final Judgement:\ninvalid", Verdict::kInvalid},
        VerdictCase{"FINAL JUDGMENT: valid (US spelling)", Verdict::kValid},
        VerdictCase{"FINAL JUDGEMENT: \"invalid\"", Verdict::kInvalid},
        // The last phrase wins when the model restates itself.
        VerdictCase{"FINAL JUDGEMENT: valid ... on reflection\n"
                    "FINAL JUDGEMENT: invalid",
                    Verdict::kInvalid},
        VerdictCase{"no protocol phrase at all", Verdict::kUnparseable},
        VerdictCase{"FINAL JUDGEMENT: maybe?", Verdict::kUnparseable},
        VerdictCase{"", Verdict::kUnparseable}));

TEST(VerdictTest, FuzzedCompletionsNeverThrow) {
  support::Rng rng(123);
  for (int i = 0; i < 500; ++i) {
    std::string junk;
    const auto len = rng.next_below(200);
    for (std::uint64_t j = 0; j < len; ++j) {
      junk.push_back(static_cast<char>(rng.next_below(256)));
    }
    // Occasionally splice protocol fragments into the junk.
    if (rng.chance(0.3)) junk += "FINAL JUDGEMENT:";
    if (rng.chance(0.3)) junk += " val";
    EXPECT_NO_THROW(parse_verdict(junk));
  }
}

TEST(VerdictTest, SaysValidMapping) {
  EXPECT_TRUE(verdict_says_valid(Verdict::kValid));
  EXPECT_FALSE(verdict_says_valid(Verdict::kInvalid));
  EXPECT_FALSE(verdict_says_valid(Verdict::kUnparseable));
  EXPECT_TRUE(verdict_says_valid(Verdict::kUnparseable, true));
}

TEST(VerdictTest, NamesAreStable) {
  EXPECT_STREQ(verdict_name(Verdict::kValid), "valid");
  EXPECT_STREQ(verdict_name(Verdict::kInvalid), "invalid");
  EXPECT_STREQ(verdict_name(Verdict::kUnparseable), "unparseable");
}

// ---------------------------------------------------------------------------
// Llmj orchestration
// ---------------------------------------------------------------------------

std::shared_ptr<llm::ModelClient> make_client() {
  return std::make_shared<llm::ModelClient>(
      std::make_shared<const llm::SimulatedCoderModel>(), 2);
}

TEST(LlmjTest, NullClientThrows) {
  EXPECT_THROW(Llmj(nullptr, llm::PromptStyle::kDirectAnalysis),
               std::invalid_argument);
}

TEST(LlmjTest, AgentStyleWithoutRecordsThrows) {
  const Llmj judge(make_client(), llm::PromptStyle::kAgentDirect);
  EXPECT_THROW(judge.evaluate(sample_file()), std::invalid_argument);
}

TEST(LlmjTest, EvaluateFillsDecision) {
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis);
  const auto decision = judge.evaluate(sample_file());
  EXPECT_FALSE(decision.prompt.empty());
  EXPECT_FALSE(decision.completion.text.empty());
  EXPECT_NE(decision.verdict, Verdict::kUnparseable);
}

TEST(LlmjTest, BrokenCompilationUsuallyJudgedInvalidByAgent) {
  auto client = make_client();
  const Llmj judge(client, llm::PromptStyle::kAgentIndirect);
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const toolchain::Executor executor;
  support::Rng rng(19);
  int invalid = 0;
  int total = 0;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    auto file = corpus::generate_one("vec_scale", Flavor::kOpenACC,
                                     Language::kC, seed)
                    .file;
    const auto mutated = probing::apply_mutation(
        file.content, file.language,
        probing::IssueType::kRemovedOpeningBracket, {}, rng);
    ASSERT_TRUE(mutated.has_value());
    file.content = *mutated;
    const auto compiled = driver.compile(file);
    const auto ran = executor.run(compiled.module);
    const auto decision = judge.evaluate(file, &compiled, &ran, seed);
    ++total;
    if (!decision.says_valid) ++invalid;
  }
  // LLMJ 2 catches roughly half of these (Table VII: 55%); well above zero
  // but far below perfect.
  EXPECT_GT(invalid, total / 5);
  EXPECT_LT(invalid, total);
}

TEST(LlmjTest, StyleAccessors) {
  const Llmj judge(make_client(), llm::PromptStyle::kAgentDirect);
  EXPECT_EQ(judge.style(), llm::PromptStyle::kAgentDirect);
  EXPECT_STREQ(judge.name(), "LLMJ 1");
}

}  // namespace
}  // namespace llm4vv::judge
