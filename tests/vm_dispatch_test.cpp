// Differential test of the VM dispatch cores: the pre-decoded fast cores
// (function-pointer table and computed-goto threaded) must be byte-identical
// to the pinned reference switch interpreter — outputs, traps, return
// codes, and exact step accounting — over hand-written programs, generated
// + probed corpora, and randomized raw bytecode modules.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "corpus/generator.hpp"
#include "probing/prober.hpp"
#include "tests/test_util.hpp"
#include "toolchain/compiler.hpp"
#include "vm/bytecode.hpp"
#include "vm/interp.hpp"
#include "vm/lower.hpp"

namespace llm4vv::vm {
namespace {

constexpr DispatchMode kFastModes[] = {DispatchMode::kTable,
                                       DispatchMode::kThreaded};

void expect_identical(const ExecResult& ref, const ExecResult& got,
                      DispatchMode mode, const std::string& what) {
  const std::string context =
      what + " [" + dispatch_mode_name(mode) + " vs reference]";
  EXPECT_EQ(ref.return_code, got.return_code) << context;
  EXPECT_EQ(ref.stdout_text, got.stdout_text) << context;
  EXPECT_EQ(ref.stderr_text, got.stderr_text) << context;
  EXPECT_EQ(ref.trap, got.trap) << context;
  EXPECT_EQ(ref.steps, got.steps) << context;
}

void diff_module(const Module& module, const ExecLimits& limits,
                 const std::string& what) {
  const ExecResult ref = execute_reference(module, limits);
  for (const DispatchMode mode : kFastModes) {
    expect_identical(ref, execute(module, limits, mode), mode, what);
  }
}

Module compile_module(const std::string& source,
                      frontend::Flavor flavor = frontend::Flavor::kOpenACC) {
  frontend::DiagnosticEngine diags;
  auto program = testutil::analyze_source(source, diags, flavor);
  if (diags.has_errors()) {
    std::string message = "compile failed:";
    for (const auto& d : diags.diagnostics()) {
      message += " [line " + std::to_string(d.line) + "] " + d.message + ";";
    }
    throw std::runtime_error(message);
  }
  LowerOptions lopts;
  lopts.flavor = flavor;
  return lower(program, lopts);
}

void diff_source(const std::string& source, const ExecLimits& limits = {}) {
  diff_module(compile_module(source), limits, source.substr(0, 60));
}

// ---------------------------------------------------------------------------
// Hand-written programs: arithmetic, control flow, memory, device regions,
// and every trap kind the front-end can reach.
// ---------------------------------------------------------------------------

TEST(VmDispatchDiffTest, StraightLinePrograms) {
  diff_source("int main() { return 2 + 3 * 4 - 20 / 4 + 10 % 3; }");
  diff_source("int main() { double x = 7.9; return (int)(x * 2.0) - 9; }");
  diff_source("int main() { int a = 5; return a > 3 ? (a << 2) : ~a; }");
  diff_source("int main() { int z = 0; return (0 && (1 / z)) + 10; }");
}

TEST(VmDispatchDiffTest, LoopsCallsAndRecursion) {
  diff_source(
      "int fib(int n) { if (n < 2) { return n; } "
      "return fib(n - 1) + fib(n - 2); }\n"
      "int main() { return fib(12) % 100; }");
  diff_source(
      "int main() { int s = 0; for (int i = 0; i < 50; i++) { "
      "if (i % 3 == 0) { continue; } s += i; } return s % 100; }");
  diff_source(
      "int g;\n"
      "void bump() { g = g + 3; return; }\n"
      "int main() { for (int i = 0; i < 7; i++) { bump(); } return g; }");
}

TEST(VmDispatchDiffTest, MemoryAndIo) {
  diff_source(
      "#include <stdlib.h>\n#include <stdio.h>\n"
      "int main() {\n"
      "  int *a = (int *)malloc(16 * sizeof(int));\n"
      "  for (int i = 0; i < 16; i++) { a[i] = i * i; }\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 16; i++) { s += a[i]; }\n"
      "  printf(\"sum=%d\\n\", s);\n"
      "  free(a);\n"
      "  return s > 0 ? 0 : 1;\n"
      "}");
  diff_source(
      "#include <stdio.h>\n"
      "int main() { fprintf(0, \"warn %d\\n\", 42); puts(\"done\"); "
      "return 0; }");  // the stream arg is dropped; output goes to stderr
}

TEST(VmDispatchDiffTest, DeviceRegions) {
  diff_source(
      "#include <stdlib.h>\n"
      "int main() {\n"
      "  double *a = (double *)malloc(64 * sizeof(double));\n"
      "  for (int i = 0; i < 64; i++) { a[i] = i * 0.5; }\n"
      "#pragma acc parallel loop copy(a[0:64])\n"
      "  for (int i = 0; i < 64; i++) { a[i] = a[i] * 2.0; }\n"
      "  double s = 0.0;\n"
      "  for (int i = 0; i < 64; i++) { s = s + a[i]; }\n"
      "  free(a);\n"
      "  return s > 0.0 ? 0 : 1;\n"
      "}");
  // present() without a prior mapping: the kNotPresent trap path.
  diff_source(
      "#include <stdlib.h>\n"
      "int main() {\n"
      "  int *a = (int *)malloc(8 * sizeof(int));\n"
      "  a[0] = 1;\n"
      "#pragma acc parallel loop present(a[0:8])\n"
      "  for (int i = 0; i < 8; i++) { a[i] = i; }\n"
      "  free(a);\n"
      "  return 0;\n"
      "}");
}

TEST(VmDispatchDiffTest, TrapPrograms) {
  diff_source("int main() { int z = 0; return 1 / z; }");
  diff_source("int main() { int z = 0; return 7 % z; }");
  diff_source("#include <stdlib.h>\nint main() { int *p = 0; return p[3]; }");
  diff_source(
      "#include <stdlib.h>\n"
      "int main() { int *a = (int *)malloc(4 * sizeof(int)); "
      "free(a); return a[1]; }");
  diff_source(
      "#include <stdlib.h>\n"
      "int main() { int *a = (int *)malloc(4 * sizeof(int)); "
      "int r = a[9]; free(a); return r; }");
  // Unbounded recursion: the call-depth trap.
  diff_source("int f(int n) { return f(n + 1); }\nint main() { return f(0); }");
  diff_source("#include <stdlib.h>\nint main() { exit(3); return 0; }");
}

TEST(VmDispatchDiffTest, BudgetTraps) {
  ExecLimits tight;
  tight.max_steps = 500;
  diff_source("int main() { int s = 0; while (1) { s += 1; } return s; }",
              tight);
  ExecLimits tiny_output;
  tiny_output.max_output = 64;
  diff_source(
      "#include <stdio.h>\n"
      "int main() { for (int i = 0; i < 100; i++) { "
      "printf(\"line %d\\n\", i); } return 0; }",
      tiny_output);
}

// The step budget must trap on the same instruction in every core — sweep
// the budget across the end-of-chunk boundary, where the fast cores'
// sentinel accounting has to undo the speculatively charged step.
TEST(VmDispatchDiffTest, StepBudgetBoundaryExact) {
  Module module;
  Chunk chunk;
  chunk.name = "main";
  for (int i = 0; i < 6; ++i) {
    chunk.code.push_back(Instr{Op::kNop, 0, 0, i + 1});
  }
  // No kRet: the reference loop falls off the end after 6 nops.
  module.chunks.push_back(chunk);
  module.main_chunk = 0;
  for (std::uint64_t budget = 1; budget <= 9; ++budget) {
    ExecLimits limits;
    limits.max_steps = budget;
    diff_module(module, limits,
                "nop-module budget=" + std::to_string(budget));
  }
}

// ---------------------------------------------------------------------------
// Generated + probed corpora: every file the suite generator can produce
// must execute identically (compile failures are skipped — no module).
// ---------------------------------------------------------------------------

TEST(VmDispatchDiffTest, GeneratedCorpusBothFlavors) {
  for (const auto flavor :
       {frontend::Flavor::kOpenACC, frontend::Flavor::kOpenMP}) {
    corpus::GeneratorConfig gen;
    gen.flavor = flavor;
    gen.count = 24;
    gen.seed = 20260728;
    const auto suite = corpus::generate_suite(gen);
    toolchain::CompilerConfig config = toolchain::nvc_persona();
    config.strictness_reject_rate = 0.0;
    const toolchain::CompilerDriver driver(config);
    ExecLimits tight;
    tight.max_steps = 20000;  // force budget traps on the longer programs
    for (const auto& tc : suite.cases) {
      const auto compiled = driver.compile(tc.file);
      if (!compiled.success || compiled.module == nullptr) continue;
      diff_module(*compiled.module, {}, tc.file.name);
      diff_module(*compiled.module, tight, tc.file.name + " (tight)");
    }
  }
}

TEST(VmDispatchDiffTest, ProbedCorpusTrapHeavy) {
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = 40;
  gen.seed = 99;
  const auto suite = corpus::generate_suite(gen);
  probing::ProbingConfig probe;
  probe.issue_counts = {4, 4, 4, 4, 4, 4};
  probe.seed = 7;
  const auto probed = probing::probe_suite(suite, probe);
  toolchain::CompilerConfig config = toolchain::nvc_persona();
  config.strictness_reject_rate = 0.0;
  const toolchain::CompilerDriver driver(config);
  for (const auto& pf : probed.files) {
    const auto compiled = driver.compile(pf.file);
    if (!compiled.success || compiled.module == nullptr) continue;
    diff_module(*compiled.module, {}, pf.file.name);
  }
}

// ---------------------------------------------------------------------------
// Randomized raw modules: structurally valid operands (indices in range,
// no negative jump targets — those are undefined in the reference loop)
// but semantically chaotic, so stack underflows, wild pointers, division
// by zero, budget exhaustion, and fell-off-the-end traps all fire. Every
// core must agree byte for byte on each of them.
// ---------------------------------------------------------------------------

Module random_module(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto pick = [&](std::size_t bound) {
    return static_cast<std::int32_t>(rng() % bound);
  };

  Module module;
  module.consts = {Value::from_int(0),     Value::from_int(1),
                   Value::from_int(7),     Value::from_float(1.5),
                   Value::from_int(-3),    Value::from_pointer(0),
                   Value::from_float(0.0), Value::from_int(1 << 20)};
  module.strings = {"s0"};
  module.global_slot_count = 4;

  Region region;
  region.device_mode = (seed & 1) != 0;
  region.directive = "fuzz";
  module.regions.push_back(region);

  // Ops the generator may emit. kCallBuiltin is excluded: several builtin
  // shims index their argument vector unchecked, which a random argc makes
  // undefined in every core alike.
  static constexpr Op kOps[] = {
      Op::kNop,        Op::kPushConst,   Op::kLoadSlot,  Op::kStoreSlot,
      Op::kLoadGlobal, Op::kStoreGlobal, Op::kAddrSlot,  Op::kAddrGlobal,
      Op::kLoadInd,    Op::kStoreInd,    Op::kStoreIndKeep,
      Op::kIndexAddr,  Op::kAdd,         Op::kSub,       Op::kMul,
      Op::kDiv,        Op::kMod,         Op::kNeg,       Op::kNot,
      Op::kBitNot,     Op::kEq,          Op::kNe,        Op::kLt,
      Op::kLe,         Op::kGt,          Op::kGe,        Op::kBitAnd,
      Op::kBitOr,      Op::kBitXor,      Op::kShl,       Op::kShr,
      Op::kCastInt,    Op::kCastFloat,   Op::kJump,      Op::kJumpIfFalse,
      Op::kJumpIfTrue, Op::kCall,        Op::kRet,       Op::kPop,
      Op::kDup,        Op::kSwap,        Op::kAllocArray,
      Op::kAllocGlobalArray,             Op::kDevEnter,  Op::kDevExit,
      Op::kDevAction};

  const std::size_t chunk_count = 2 + rng() % 2;
  for (std::size_t c = 0; c < chunk_count; ++c) {
    Chunk chunk;
    chunk.name = "fuzz" + std::to_string(c);
    chunk.param_count = pick(3);
    chunk.slot_count = chunk.param_count + 4;
    const std::size_t length = 4 + rng() % 40;
    for (std::size_t i = 0; i < length; ++i) {
      Instr instr;
      instr.op = kOps[rng() % (sizeof(kOps) / sizeof(kOps[0]))];
      instr.line = static_cast<std::int32_t>(i + 1);
      switch (instr.op) {
        case Op::kPushConst:
          instr.a = pick(module.consts.size());
          break;
        case Op::kLoadSlot:
        case Op::kStoreSlot:
        case Op::kAddrSlot:
          instr.a = pick(static_cast<std::size_t>(chunk.slot_count));
          break;
        case Op::kLoadGlobal:
        case Op::kStoreGlobal:
        case Op::kAddrGlobal:
          instr.a = pick(static_cast<std::size_t>(module.global_slot_count));
          break;
        case Op::kJump:
        case Op::kJumpIfFalse:
        case Op::kJumpIfTrue:
          // [0, length + 3]: a target of `length` falls off the end at the
          // last instruction's line, anything beyond renders the same trap
          // with no line — both must match the reference byte for byte.
          // Negative targets are undefined in the reference loop, so never
          // generated.
          instr.a = pick(length + 4);
          break;
        case Op::kCall:
          instr.a = pick(chunk_count);
          instr.b = pick(3);
          break;
        case Op::kAllocArray:
          instr.a = pick(static_cast<std::size_t>(chunk.slot_count));
          instr.b = pick(4);  // 0 pops a (possibly absurd) count: kBadAlloc
          break;
        case Op::kAllocGlobalArray:
          instr.a = pick(static_cast<std::size_t>(module.global_slot_count));
          instr.b = 1 + pick(3);
          break;
        case Op::kDevEnter:
        case Op::kDevExit:
        case Op::kDevAction:
          instr.a = pick(module.regions.size());
          break;
        default:
          instr.a = pick(8);
          instr.b = pick(8);
          break;
      }
      chunk.code.push_back(instr);
    }
    module.chunks.push_back(std::move(chunk));
  }
  module.main_chunk = 0;
  if ((rng() & 3) == 0 && chunk_count > 1) module.init_chunk = 1;
  return module;
}

TEST(VmDispatchDiffTest, RandomizedModules) {
  ExecLimits limits;
  limits.max_steps = 3000;
  limits.max_output = 1u << 12;
  limits.max_frames = 32;
  limits.max_cells = 1u << 16;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    diff_module(random_module(seed), limits,
                "random module seed=" + std::to_string(seed));
  }
}

// Wild jumps: a target of exactly `size` must trap at the last
// instruction's line, a target beyond `size` must trap with no line —
// both identical to the reference loop's fetch bounds check.
TEST(VmDispatchDiffTest, WildJumpTargetsRenderReferenceLines) {
  for (const std::int32_t target : {3, 4, 100, 1 << 20}) {
    Module module;
    Chunk chunk;
    chunk.name = "main";
    chunk.code.push_back(Instr{Op::kNop, 0, 0, 1});
    chunk.code.push_back(Instr{Op::kJump, target, 0, 2});
    chunk.code.push_back(Instr{Op::kNop, 0, 0, 3});
    module.chunks.push_back(chunk);
    module.main_chunk = 0;
    diff_module(module, {}, "wild jump to " + std::to_string(target));
  }
}

// Empty chunks trap "fell off the end" before executing anything; the
// decoded sentinel is the only instruction in the stream.
TEST(VmDispatchDiffTest, EmptyMainChunk) {
  Module module;
  Chunk chunk;
  chunk.name = "empty";
  module.chunks.push_back(chunk);
  module.main_chunk = 0;
  diff_module(module, {}, "empty main chunk");
}

// Sanity on the mode surface itself.
TEST(VmDispatchTest, ModeNamesAndDefault) {
  EXPECT_STREQ(dispatch_mode_name(DispatchMode::kReference), "reference");
  EXPECT_STREQ(dispatch_mode_name(DispatchMode::kTable), "table");
  if (threaded_dispatch_is_computed_goto()) {
    EXPECT_STREQ(dispatch_mode_name(DispatchMode::kThreaded),
                 "computed-goto");
  } else {
    EXPECT_STREQ(dispatch_mode_name(DispatchMode::kThreaded), "table");
  }
  EXPECT_EQ(default_dispatch_mode(), DispatchMode::kTable);
}

}  // namespace
}  // namespace llm4vv::vm
