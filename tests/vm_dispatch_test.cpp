// Differential test of the VM dispatch cores: the pre-decoded fast cores
// (function-pointer table and computed-goto threaded), with superinstruction
// fusion both on and off, must be byte-identical to the pinned reference
// switch interpreter — outputs, traps, return codes, and exact step
// accounting — over hand-written programs, generated + probed corpora, and
// randomized raw bytecode modules (1000+ by default; seed and count are env
// overridable so CI failures reproduce locally, and any mismatch prints a
// self-contained reproducer with the module dump).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "corpus/generator.hpp"
#include "probing/prober.hpp"
#include "tests/test_util.hpp"
#include "toolchain/compiler.hpp"
#include "vm/bytecode.hpp"
#include "vm/interp.hpp"
#include "vm/lower.hpp"

namespace llm4vv::vm {
namespace {

constexpr DispatchMode kFastModes[] = {DispatchMode::kTable,
                                       DispatchMode::kThreaded};

void expect_identical(const ExecResult& ref, const ExecResult& got,
                      DispatchMode mode, bool fuse, const std::string& what) {
  const std::string context = what + " [" + dispatch_mode_name(mode) +
                              (fuse ? "+fused" : "+unfused") +
                              " vs reference]";
  EXPECT_EQ(ref.return_code, got.return_code) << context;
  EXPECT_EQ(ref.stdout_text, got.stdout_text) << context;
  EXPECT_EQ(ref.stderr_text, got.stderr_text) << context;
  EXPECT_EQ(ref.trap, got.trap) << context;
  EXPECT_EQ(ref.steps, got.steps) << context;
  // Telemetry sanity rides along: fusion off must report zero fused sites,
  // and pattern count can never exceed site count.
  if (!fuse) EXPECT_EQ(got.fused_instructions, 0u) << context;
  EXPECT_LE(got.fusion_patterns, got.fused_instructions) << context;
}

/// The full differential matrix for one module: the reference core is the
/// oracle; every fast core runs with fusion both off and on.
void diff_module(const Module& module, const ExecLimits& limits,
                 const std::string& what) {
  const ExecResult ref = execute_reference(module, limits);
  for (const DispatchMode mode : kFastModes) {
    for (const bool fuse : {false, true}) {
      expect_identical(ref, execute(module, limits, mode, fuse), mode, fuse,
                       what);
    }
  }
}

Module compile_module(const std::string& source,
                      frontend::Flavor flavor = frontend::Flavor::kOpenACC) {
  frontend::DiagnosticEngine diags;
  auto program = testutil::analyze_source(source, diags, flavor);
  if (diags.has_errors()) {
    std::string message = "compile failed:";
    for (const auto& d : diags.diagnostics()) {
      message += " [line " + std::to_string(d.line) + "] " + d.message + ";";
    }
    throw std::runtime_error(message);
  }
  LowerOptions lopts;
  lopts.flavor = flavor;
  return lower(program, lopts);
}

void diff_source(const std::string& source, const ExecLimits& limits = {}) {
  diff_module(compile_module(source), limits, source.substr(0, 60));
}

// ---------------------------------------------------------------------------
// Hand-written programs: arithmetic, control flow, memory, device regions,
// and every trap kind the front-end can reach.
// ---------------------------------------------------------------------------

TEST(VmDispatchDiffTest, StraightLinePrograms) {
  diff_source("int main() { return 2 + 3 * 4 - 20 / 4 + 10 % 3; }");
  diff_source("int main() { double x = 7.9; return (int)(x * 2.0) - 9; }");
  diff_source("int main() { int a = 5; return a > 3 ? (a << 2) : ~a; }");
  diff_source("int main() { int z = 0; return (0 && (1 / z)) + 10; }");
}

TEST(VmDispatchDiffTest, LoopsCallsAndRecursion) {
  diff_source(
      "int fib(int n) { if (n < 2) { return n; } "
      "return fib(n - 1) + fib(n - 2); }\n"
      "int main() { return fib(12) % 100; }");
  diff_source(
      "int main() { int s = 0; for (int i = 0; i < 50; i++) { "
      "if (i % 3 == 0) { continue; } s += i; } return s % 100; }");
  diff_source(
      "int g;\n"
      "void bump() { g = g + 3; return; }\n"
      "int main() { for (int i = 0; i < 7; i++) { bump(); } return g; }");
}

TEST(VmDispatchDiffTest, MemoryAndIo) {
  diff_source(
      "#include <stdlib.h>\n#include <stdio.h>\n"
      "int main() {\n"
      "  int *a = (int *)malloc(16 * sizeof(int));\n"
      "  for (int i = 0; i < 16; i++) { a[i] = i * i; }\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 16; i++) { s += a[i]; }\n"
      "  printf(\"sum=%d\\n\", s);\n"
      "  free(a);\n"
      "  return s > 0 ? 0 : 1;\n"
      "}");
  diff_source(
      "#include <stdio.h>\n"
      "int main() { fprintf(0, \"warn %d\\n\", 42); puts(\"done\"); "
      "return 0; }");  // the stream arg is dropped; output goes to stderr
}

TEST(VmDispatchDiffTest, DeviceRegions) {
  diff_source(
      "#include <stdlib.h>\n"
      "int main() {\n"
      "  double *a = (double *)malloc(64 * sizeof(double));\n"
      "  for (int i = 0; i < 64; i++) { a[i] = i * 0.5; }\n"
      "#pragma acc parallel loop copy(a[0:64])\n"
      "  for (int i = 0; i < 64; i++) { a[i] = a[i] * 2.0; }\n"
      "  double s = 0.0;\n"
      "  for (int i = 0; i < 64; i++) { s = s + a[i]; }\n"
      "  free(a);\n"
      "  return s > 0.0 ? 0 : 1;\n"
      "}");
  // present() without a prior mapping: the kNotPresent trap path.
  diff_source(
      "#include <stdlib.h>\n"
      "int main() {\n"
      "  int *a = (int *)malloc(8 * sizeof(int));\n"
      "  a[0] = 1;\n"
      "#pragma acc parallel loop present(a[0:8])\n"
      "  for (int i = 0; i < 8; i++) { a[i] = i; }\n"
      "  free(a);\n"
      "  return 0;\n"
      "}");
}

TEST(VmDispatchDiffTest, TrapPrograms) {
  diff_source("int main() { int z = 0; return 1 / z; }");
  diff_source("int main() { int z = 0; return 7 % z; }");
  diff_source("#include <stdlib.h>\nint main() { int *p = 0; return p[3]; }");
  diff_source(
      "#include <stdlib.h>\n"
      "int main() { int *a = (int *)malloc(4 * sizeof(int)); "
      "free(a); return a[1]; }");
  diff_source(
      "#include <stdlib.h>\n"
      "int main() { int *a = (int *)malloc(4 * sizeof(int)); "
      "int r = a[9]; free(a); return r; }");
  // Unbounded recursion: the call-depth trap.
  diff_source("int f(int n) { return f(n + 1); }\nint main() { return f(0); }");
  diff_source("#include <stdlib.h>\nint main() { exit(3); return 0; }");
}

TEST(VmDispatchDiffTest, BudgetTraps) {
  ExecLimits tight;
  tight.max_steps = 500;
  diff_source("int main() { int s = 0; while (1) { s += 1; } return s; }",
              tight);
  ExecLimits tiny_output;
  tiny_output.max_output = 64;
  diff_source(
      "#include <stdio.h>\n"
      "int main() { for (int i = 0; i < 100; i++) { "
      "printf(\"line %d\\n\", i); } return 0; }",
      tiny_output);
}

// The step budget must trap on the same instruction in every core — sweep
// the budget across the end-of-chunk boundary, where the fast cores'
// sentinel accounting has to undo the speculatively charged step.
TEST(VmDispatchDiffTest, StepBudgetBoundaryExact) {
  Module module;
  Chunk chunk;
  chunk.name = "main";
  for (int i = 0; i < 6; ++i) {
    chunk.code.push_back(Instr{Op::kNop, 0, 0, i + 1});
  }
  // No kRet: the reference loop falls off the end after 6 nops.
  module.chunks.push_back(chunk);
  module.main_chunk = 0;
  for (std::uint64_t budget = 1; budget <= 9; ++budget) {
    ExecLimits limits;
    limits.max_steps = budget;
    diff_module(module, limits,
                "nop-module budget=" + std::to_string(budget));
  }
}

// ---------------------------------------------------------------------------
// Generated + probed corpora: every file the suite generator can produce
// must execute identically (compile failures are skipped — no module).
// ---------------------------------------------------------------------------

TEST(VmDispatchDiffTest, GeneratedCorpusBothFlavors) {
  for (const auto flavor :
       {frontend::Flavor::kOpenACC, frontend::Flavor::kOpenMP}) {
    const auto suite =
        corpus::generate_suite(testutil::corpus_config(flavor, 24, 20260728));
    toolchain::CompilerConfig config = toolchain::nvc_persona();
    config.strictness_reject_rate = 0.0;
    const toolchain::CompilerDriver driver(config);
    ExecLimits tight;
    tight.max_steps = 20000;  // force budget traps on the longer programs
    for (const auto& tc : suite.cases) {
      const auto compiled = driver.compile(tc.file);
      if (!compiled.success || compiled.module == nullptr) continue;
      diff_module(*compiled.module, {}, tc.file.name);
      diff_module(*compiled.module, tight, tc.file.name + " (tight)");
    }
  }
}

TEST(VmDispatchDiffTest, ProbedCorpusTrapHeavy) {
  const auto suite = corpus::generate_suite(
      testutil::corpus_config(frontend::Flavor::kOpenACC, 40, 99));
  probing::ProbingConfig probe;
  probe.issue_counts = {4, 4, 4, 4, 4, 4};
  probe.seed = 7;
  const auto probed = probing::probe_suite(suite, probe);
  toolchain::CompilerConfig config = toolchain::nvc_persona();
  config.strictness_reject_rate = 0.0;
  const toolchain::CompilerDriver driver(config);
  for (const auto& pf : probed.files) {
    const auto compiled = driver.compile(pf.file);
    if (!compiled.success || compiled.module == nullptr) continue;
    diff_module(*compiled.module, {}, pf.file.name);
  }
}

// ---------------------------------------------------------------------------
// Randomized raw modules: structurally valid operands (indices in range,
// no negative jump targets — those are undefined in the reference loop)
// but semantically chaotic, so stack underflows, wild pointers, division
// by zero, budget exhaustion, and fell-off-the-end traps all fire. Every
// core must agree byte for byte on each of them.
// ---------------------------------------------------------------------------

Module random_module(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const auto pick = [&](std::size_t bound) {
    return static_cast<std::int32_t>(rng() % bound);
  };

  Module module;
  module.consts = {Value::from_int(0),     Value::from_int(1),
                   Value::from_int(7),     Value::from_float(1.5),
                   Value::from_int(-3),    Value::from_pointer(0),
                   Value::from_float(0.0), Value::from_int(1 << 20)};
  module.strings = {"s0"};
  module.global_slot_count = 4;

  Region region;
  region.device_mode = (seed & 1) != 0;
  region.directive = "fuzz";
  module.regions.push_back(region);

  // Ops the generator may emit. kCallBuiltin is excluded: several builtin
  // shims index their argument vector unchecked, which a random argc makes
  // undefined in every core alike.
  static constexpr Op kOps[] = {
      Op::kNop,        Op::kPushConst,   Op::kLoadSlot,  Op::kStoreSlot,
      Op::kLoadGlobal, Op::kStoreGlobal, Op::kAddrSlot,  Op::kAddrGlobal,
      Op::kLoadInd,    Op::kStoreInd,    Op::kStoreIndKeep,
      Op::kIndexAddr,  Op::kAdd,         Op::kSub,       Op::kMul,
      Op::kDiv,        Op::kMod,         Op::kNeg,       Op::kNot,
      Op::kBitNot,     Op::kEq,          Op::kNe,        Op::kLt,
      Op::kLe,         Op::kGt,          Op::kGe,        Op::kBitAnd,
      Op::kBitOr,      Op::kBitXor,      Op::kShl,       Op::kShr,
      Op::kCastInt,    Op::kCastFloat,   Op::kJump,      Op::kJumpIfFalse,
      Op::kJumpIfTrue, Op::kCall,        Op::kRet,       Op::kPop,
      Op::kDup,        Op::kSwap,        Op::kAllocArray,
      Op::kAllocGlobalArray,             Op::kDevEnter,  Op::kDevExit,
      Op::kDevAction};

  const std::size_t chunk_count = 2 + rng() % 2;
  for (std::size_t c = 0; c < chunk_count; ++c) {
    Chunk chunk;
    chunk.name = "fuzz" + std::to_string(c);
    chunk.param_count = pick(3);
    chunk.slot_count = chunk.param_count + 4;
    const std::size_t length = 4 + rng() % 40;
    for (std::size_t i = 0; i < length; ++i) {
      Instr instr;
      instr.op = kOps[rng() % (sizeof(kOps) / sizeof(kOps[0]))];
      instr.line = static_cast<std::int32_t>(i + 1);
      switch (instr.op) {
        case Op::kPushConst:
          instr.a = pick(module.consts.size());
          break;
        case Op::kLoadSlot:
        case Op::kStoreSlot:
        case Op::kAddrSlot:
          instr.a = pick(static_cast<std::size_t>(chunk.slot_count));
          break;
        case Op::kLoadGlobal:
        case Op::kStoreGlobal:
        case Op::kAddrGlobal:
          instr.a = pick(static_cast<std::size_t>(module.global_slot_count));
          break;
        case Op::kJump:
        case Op::kJumpIfFalse:
        case Op::kJumpIfTrue:
          // [0, length + 3]: a target of `length` falls off the end at the
          // last instruction's line, anything beyond renders the same trap
          // with no line — both must match the reference byte for byte.
          // Negative targets are undefined in the reference loop, so never
          // generated.
          instr.a = pick(length + 4);
          break;
        case Op::kCall:
          instr.a = pick(chunk_count);
          instr.b = pick(3);
          break;
        case Op::kAllocArray:
          instr.a = pick(static_cast<std::size_t>(chunk.slot_count));
          instr.b = pick(4);  // 0 pops a (possibly absurd) count: kBadAlloc
          break;
        case Op::kAllocGlobalArray:
          instr.a = pick(static_cast<std::size_t>(module.global_slot_count));
          instr.b = 1 + pick(3);
          break;
        case Op::kDevEnter:
        case Op::kDevExit:
        case Op::kDevAction:
          instr.a = pick(module.regions.size());
          break;
        default:
          instr.a = pick(8);
          instr.b = pick(8);
          break;
      }
      chunk.code.push_back(instr);
    }
    module.chunks.push_back(std::move(chunk));
  }
  module.main_chunk = 0;
  if ((rng() & 3) == 0 && chunk_count > 1) module.init_chunk = 1;
  return module;
}

// Env knobs so any CI failure reproduces locally in one command:
// LLM4VV_DISPATCH_FUZZ_SEED is the base seed (default 0) and
// LLM4VV_DISPATCH_FUZZ_COUNT the number of modules (default 1000).
std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  return (end != nullptr && *end == '\0') ? value : fallback;
}

std::string module_dump(const Module& module) {
  std::string dump;
  for (std::size_t c = 0; c < module.chunks.size(); ++c) {
    dump += "--- chunk " + std::to_string(c) + " (" +
            module.chunks[c].name + ") ---\n";
    dump += disassemble(module, module.chunks[c]);
  }
  return dump;
}

TEST(VmDispatchDiffTest, RandomizedModules) {
  const std::uint64_t base = env_u64("LLM4VV_DISPATCH_FUZZ_SEED", 0);
  const std::uint64_t count = env_u64("LLM4VV_DISPATCH_FUZZ_COUNT", 1000);
  ExecLimits limits;
  limits.max_steps = 3000;
  limits.max_output = 1u << 12;
  limits.max_frames = 32;
  limits.max_cells = 1u << 16;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t seed = base + i;
    const Module module = random_module(seed);
    diff_module(module, limits, "random module seed=" + std::to_string(seed));
    if (::testing::Test::HasFailure()) {
      // Stop at the first mismatch and print a self-contained reproducer
      // instead of a wall of per-seed gtest diffs.
      GTEST_FAIL() << "cross-core mismatch at seed " << seed
                   << "\nreproduce with:\n"
                   << "  LLM4VV_DISPATCH_FUZZ_SEED=" << seed
                   << " LLM4VV_DISPATCH_FUZZ_COUNT=1 ./vm_dispatch_test"
                      " --gtest_filter='*RandomizedModules'\n"
                   << "module under test:\n"
                   << module_dump(module);
    }
  }
}

// Wild jumps: a target of exactly `size` must trap at the last
// instruction's line, a target beyond `size` must trap with no line —
// both identical to the reference loop's fetch bounds check.
TEST(VmDispatchDiffTest, WildJumpTargetsRenderReferenceLines) {
  for (const std::int32_t target : {3, 4, 100, 1 << 20}) {
    Module module;
    Chunk chunk;
    chunk.name = "main";
    chunk.code.push_back(Instr{Op::kNop, 0, 0, 1});
    chunk.code.push_back(Instr{Op::kJump, target, 0, 2});
    chunk.code.push_back(Instr{Op::kNop, 0, 0, 3});
    module.chunks.push_back(chunk);
    module.main_chunk = 0;
    diff_module(module, {}, "wild jump to " + std::to_string(target));
  }
}

// Empty chunks trap "fell off the end" before executing anything; the
// decoded sentinel is the only instruction in the stream.
TEST(VmDispatchDiffTest, EmptyMainChunk) {
  Module module;
  Chunk chunk;
  chunk.name = "empty";
  module.chunks.push_back(chunk);
  module.main_chunk = 0;
  diff_module(module, {}, "empty main chunk");
}

// ---------------------------------------------------------------------------
// Superinstruction fusion boundaries. The fast cores may fuse hot
// pairs/triples at decode time, but never across a jump target landing in
// the interior of a sequence, and step accounting must stay exact: a
// budget trap inside a fused handler has to land on the precise component
// instruction, rendering the same trap line as the reference.
// ---------------------------------------------------------------------------

// Sentinel operand fixed up by pattern_module to point at the epilogue.
constexpr std::int32_t kEpilogueTarget = -1;

Instr raw(Op op, std::int32_t a = 0, std::int32_t b = 0) {
  return Instr{op, a, b, 0};
}

/// Wraps a handcrafted body in a runnable module: consts [0, 1, 7, 1.5],
/// a `push 0; ret` epilogue, and line = index + 1 so budget traps pin
/// every component position to a distinct source line.
Module pattern_module(std::vector<Instr> body) {
  Module module;
  module.consts = {Value::from_int(0), Value::from_int(1), Value::from_int(7),
                   Value::from_float(1.5)};
  module.global_slot_count = 2;
  const auto epilogue = static_cast<std::int32_t>(body.size());
  for (auto& instr : body) {
    if ((instr.op == Op::kJump || instr.op == Op::kJumpIfFalse ||
         instr.op == Op::kJumpIfTrue) &&
        instr.a == kEpilogueTarget) {
      instr.a = epilogue;
    }
  }
  body.push_back(raw(Op::kPushConst, 0));
  body.push_back(raw(Op::kRet));
  for (std::size_t i = 0; i < body.size(); ++i) {
    body[i].line = static_cast<std::int32_t>(i + 1);
  }
  Chunk chunk;
  chunk.name = "main";
  chunk.slot_count = 4;
  chunk.code = std::move(body);
  module.chunks.push_back(std::move(chunk));
  module.main_chunk = 0;
  return module;
}

/// One handcrafted program per fusion pattern, keyed by registry name.
/// The per-pattern test fails loudly when a new pattern lands without a
/// program here. Feeds that must not themselves fuse use kLoadGlobal /
/// kAllocGlobalArray, which appear in no pattern.
std::vector<Instr> pattern_program(const std::string& name) {
  if (name == "LoadSlotPushConstMul")
    return {raw(Op::kLoadSlot, 0), raw(Op::kPushConst, 2), raw(Op::kMul),
            raw(Op::kPop)};
  if (name == "LoadSlotPushConstAdd")
    return {raw(Op::kLoadSlot, 0), raw(Op::kPushConst, 2), raw(Op::kAdd),
            raw(Op::kPop)};
  if (name == "LoadSlotPushConstLt")
    return {raw(Op::kLoadSlot, 0), raw(Op::kPushConst, 2), raw(Op::kLt),
            raw(Op::kPop)};
  if (name == "LoadSlotLoadSlotIndexAddr")
    return {raw(Op::kAllocArray, 0, 8), raw(Op::kLoadSlot, 0),
            raw(Op::kLoadSlot, 1), raw(Op::kIndexAddr), raw(Op::kPop)};
  if (name == "IndexAddrLoadInd")
    return {raw(Op::kAllocGlobalArray, 0, 8), raw(Op::kLoadGlobal, 0),
            raw(Op::kPushConst, 1), raw(Op::kIndexAddr), raw(Op::kLoadInd),
            raw(Op::kPop)};
  if (name == "IndexAddrStoreInd")
    return {raw(Op::kAllocGlobalArray, 0, 8), raw(Op::kPushConst, 2),
            raw(Op::kLoadGlobal, 0), raw(Op::kPushConst, 1),
            raw(Op::kIndexAddr), raw(Op::kStoreInd)};
  if (name == "AddStoreSlot")
    return {raw(Op::kPushConst, 2), raw(Op::kPushConst, 1), raw(Op::kAdd),
            raw(Op::kStoreSlot, 0)};
  if (name == "LoadSlotLoadSlot")
    return {raw(Op::kLoadSlot, 0), raw(Op::kLoadSlot, 1), raw(Op::kPop),
            raw(Op::kPop)};
  if (name == "PushConstStoreSlot")
    return {raw(Op::kPushConst, 2), raw(Op::kStoreSlot, 0)};
  const auto cmp_branch = [](Op cmp) {
    return std::vector<Instr>{raw(Op::kPushConst, 1), raw(Op::kPushConst, 2),
                              raw(cmp),
                              raw(Op::kJumpIfFalse, kEpilogueTarget)};
  };
  if (name == "LtJumpIfFalse") return cmp_branch(Op::kLt);
  if (name == "LeJumpIfFalse") return cmp_branch(Op::kLe);
  if (name == "GtJumpIfFalse") return cmp_branch(Op::kGt);
  if (name == "GeJumpIfFalse") return cmp_branch(Op::kGe);
  if (name == "EqJumpIfFalse") return cmp_branch(Op::kEq);
  if (name == "NeJumpIfFalse") return cmp_branch(Op::kNe);
  return {};
}

TEST(VmFusionTest, PatternTableSanity) {
  const std::size_t n = fusion_pattern_count();
  EXPECT_GE(n, 14u);
  std::vector<std::string> names;
  std::size_t prev_length = 3;
  for (std::size_t p = 0; p < n; ++p) {
    const std::size_t length = fusion_pattern_length(p);
    EXPECT_GE(length, 2u) << "pattern " << p;
    EXPECT_LE(length, 3u) << "pattern " << p;
    // Non-increasing lengths keep greedy first-hit matching longest-first.
    EXPECT_LE(length, prev_length) << "pattern " << p;
    prev_length = length;
    const char* name = fusion_pattern_name(p);
    ASSERT_NE(name, nullptr);
    EXPECT_FALSE(std::string(name).empty());
    names.emplace_back(name);
    for (std::size_t c = 0; c < length; ++c) {
      EXPECT_LT(static_cast<std::size_t>(fusion_pattern_component(p, c)),
                kOpCount)
          << name << " component " << c;
    }
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end())
      << "duplicate fusion pattern names";
  // Out-of-range introspection degrades to inert fallbacks.
  EXPECT_STREQ(fusion_pattern_name(n), "?");
  EXPECT_EQ(fusion_pattern_length(n), 0u);
  EXPECT_EQ(fusion_pattern_component(0, 99), Op::kNop);
}

TEST(VmFusionTest, ReferenceIgnoresFusionFlag) {
  const Module module =
      pattern_module(pattern_program("LoadSlotPushConstMul"));
  const ExecResult plain =
      execute(module, {}, DispatchMode::kReference, false);
  const ExecResult fused = execute(module, {}, DispatchMode::kReference, true);
  EXPECT_EQ(fused.fused_instructions, 0u);
  EXPECT_EQ(fused.fusion_patterns, 0u);
  expect_identical(plain, fused, DispatchMode::kReference, false,
                   "reference fuse flag");
}

TEST(VmFusionTest, BranchTargetIntoSequenceBlocksFusion) {
  // A [LoadSlot, PushConst, Mul] triple sits at indices 2..4; a never-taken
  // conditional branch marks index `target` as a jump target at decode
  // time. Interior targets (3, 4) must refuse fusion entirely; targeting
  // the head (2) fuses as usual. Every variant stays byte-identical.
  for (const std::int32_t target : {2, 3, 4}) {
    const Module module = pattern_module({
        raw(Op::kPushConst, 1),         // 0: truthy condition
        raw(Op::kJumpIfFalse, target),  // 1: not taken; marks the target
        raw(Op::kLoadSlot, 0),          // 2: head
        raw(Op::kPushConst, 2),         // 3: interior
        raw(Op::kMul),                  // 4: interior
        raw(Op::kPop),                  // 5
    });
    const ExecResult fused = execute(module, {}, DispatchMode::kTable, true);
    EXPECT_EQ(fused.fused_instructions, target == 2 ? 1u : 0u)
        << "branch target " << target;
    diff_module(module, {},
                "branch into fusable sequence at " + std::to_string(target));
  }
}

TEST(VmFusionTest, StepBudgetSweepInsideFusedSequences) {
  // Three fused sites back to back (triple, triple, pair) with unfusable
  // glue between them; sweeping the step budget lands the trap on every
  // position — fused heads and mid-sequence components alike — and the
  // stderr trap line must match the reference at each one.
  const Module module = pattern_module({
      raw(Op::kLoadSlot, 0),   // 0 ─┐
      raw(Op::kPushConst, 2),  // 1  ├ LoadSlotPushConstMul
      raw(Op::kMul),           // 2 ─┘
      raw(Op::kStoreSlot, 1),  // 3
      raw(Op::kLoadSlot, 0),   // 4 ─┐
      raw(Op::kPushConst, 2),  // 5  ├ LoadSlotPushConstAdd
      raw(Op::kAdd),           // 6 ─┘ (consumed: Add+StoreSlot cannot pair)
      raw(Op::kStoreSlot, 1),  // 7
      raw(Op::kLoadSlot, 0),   // 8 ─┐ LoadSlotLoadSlot
      raw(Op::kLoadSlot, 1),   // 9 ─┘
      raw(Op::kPop),           // 10
      raw(Op::kPop),           // 11
  });
  const ExecResult full = execute(module, {}, DispatchMode::kTable, true);
  EXPECT_EQ(full.return_code, 0);
  EXPECT_EQ(full.fused_instructions, 3u);
  EXPECT_EQ(full.fusion_patterns, 3u);
  for (std::uint64_t budget = 1; budget <= 16; ++budget) {
    ExecLimits limits;
    limits.max_steps = budget;
    diff_module(module, limits, "fused budget=" + std::to_string(budget));
  }
}

TEST(VmFusionTest, EveryPatternTrapsOnEveryComponentLine) {
  for (std::size_t p = 0; p < fusion_pattern_count(); ++p) {
    const std::string name = fusion_pattern_name(p);
    const std::vector<Instr> body = pattern_program(name);
    ASSERT_FALSE(body.empty())
        << "no handcrafted program for fusion pattern " << name
        << " — add one to pattern_program()";
    const Module module = pattern_module(body);
    const ExecResult fused = execute(module, {}, DispatchMode::kTable, true);
    const ExecResult unfused =
        execute(module, {}, DispatchMode::kTable, false);
    EXPECT_GE(fused.fused_instructions, 1u) << name;
    EXPECT_GE(fused.fusion_patterns, 1u) << name;
    EXPECT_EQ(unfused.fused_instructions, 0u) << name;
    // Budget sweep across the whole program: the trap lands on each
    // component position of the fused sequence in turn, so a wrong
    // step-undo or trap line shows up as a diff at some budget.
    for (std::uint64_t budget = 1; budget <= body.size() + 3; ++budget) {
      ExecLimits limits;
      limits.max_steps = budget;
      diff_module(module, limits, name + " budget=" + std::to_string(budget));
    }
  }
}

// Sanity on the mode surface itself.
TEST(VmDispatchTest, ModeNamesAndDefault) {
  EXPECT_STREQ(dispatch_mode_name(DispatchMode::kReference), "reference");
  EXPECT_STREQ(dispatch_mode_name(DispatchMode::kTable), "table");
  if (threaded_dispatch_is_computed_goto()) {
    EXPECT_STREQ(dispatch_mode_name(DispatchMode::kThreaded),
                 "computed-goto");
  } else {
    EXPECT_STREQ(dispatch_mode_name(DispatchMode::kThreaded), "table");
  }
  EXPECT_EQ(default_dispatch_mode(), DispatchMode::kTable);
  // The 3-arg execute overload follows the build-time fusion default.
  const Module module = pattern_module(pattern_program("PushConstStoreSlot"));
  const ExecResult implicit = execute(module, {}, DispatchMode::kTable);
  EXPECT_EQ(implicit.fused_instructions > 0, default_fusion_enabled());
}

}  // namespace
}  // namespace llm4vv::vm
