// Registry/legacy consistency suite (the PR 8 observability invariant):
// for every chaos and cache configuration, (a) each input file resolves as
// exactly one of judged / judge_error with nothing dropped, and (b) the
// metrics registry's counter totals exactly equal the pre-existing
// PipelineResult / ClientStats / JudgeCacheStats snapshot fields they
// subsume — the probes scrape the same stats() snapshots, so any drift is
// a wiring bug, not noise. Also pins paper-mode accounting (the seed-exact
// 1606.13 simulated GPU seconds) with the registry and tracer attached,
// and asserts full per-file span coverage in the collected trace.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "corpus/generator.hpp"
#include "core/experiments.hpp"
#include "judge/judge.hpp"
#include "llm/client.hpp"
#include "llm/coder_model.hpp"
#include "llm/faults.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pipeline/validation_pipeline.hpp"
#include "probing/prober.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::pipeline {
namespace {

constexpr std::size_t kCorpusSize = 120;

std::vector<frontend::SourceFile> make_corpus(std::uint64_t seed) {
  const std::size_t invalid = kCorpusSize * 3 / 10;
  const auto suite = corpus::generate_suite(testutil::corpus_config(
      frontend::Flavor::kOpenACC, kCorpusSize + 32, seed));

  probing::ProbingConfig probe;
  probe.issue_counts = {invalid / 3, invalid / 3, invalid - 2 * (invalid / 3),
                        0, 0, kCorpusSize - invalid};
  probe.seed = 77;
  const auto probed = probing::probe_suite(suite, probe);

  std::vector<frontend::SourceFile> files;
  files.reserve(probed.files.size());
  for (const auto& pf : probed.files) files.push_back(pf.file);
  return files;
}

struct ObsRun {
  PipelineResult result;
  std::shared_ptr<llm::ModelClient> client;
  std::shared_ptr<const judge::Llmj> judge;
  std::shared_ptr<obs::Registry> registry;
  std::shared_ptr<obs::Tracer> tracer;
};

/// Run the pipeline with a fresh registry (and tracer) attached.
ObsRun run_observed(const std::vector<frontend::SourceFile>& files,
                    double transient_rate, std::uint32_t max_attempts,
                    bool cache_enabled, std::size_t judge_batch_size) {
  ObsRun run;
  llm::CoderModelConfig model_config;
  if (transient_rate > 0.0) {
    llm::FaultPlanConfig plan;
    plan.transient_rate = transient_rate;
    model_config.faults = std::make_shared<llm::FaultPlan>(plan);
  }
  auto model = std::make_shared<const llm::SimulatedCoderModel>(model_config);

  llm::RetryPolicy retry;
  retry.max_attempts = max_attempts;
  retry.base_backoff_us = 50;
  retry.max_backoff_us = 400;
  run.client = std::make_shared<llm::ModelClient>(
      model, /*max_concurrency=*/2, /*transcript_capacity=*/0,
      llm::BatcherConfig{}, retry);

  judge::JudgeCacheConfig cache;
  cache.enabled = cache_enabled;
  run.judge = std::make_shared<const judge::Llmj>(
      run.client, llm::PromptStyle::kAgentDirect, cache);

  run.registry = std::make_shared<obs::Registry>();
  run.tracer = std::make_shared<obs::Tracer>();
  run.client->set_tracer(run.tracer);

  PipelineConfig config;
  config.mode = PipelineMode::kRecordAll;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 2;
  config.judge_batch_size = judge_batch_size;
  config.registry = run.registry;
  config.trace = run.tracer;
  const ValidationPipeline pipe(
      testutil::clean_driver(frontend::Flavor::kOpenACC),
      toolchain::Executor(), run.judge, config);
  run.result = pipe.run(files);
  return run;
}

double metric(const obs::MetricsSnapshot& snapshot, const std::string& name) {
  const obs::MetricSample* found = obs::find_sample(snapshot, name);
  EXPECT_NE(found, nullptr) << "metric missing: " << name;
  return found != nullptr ? found->value : -1.0;
}

/// The invariant: every registry total equals the legacy snapshot field it
/// subsumes, exactly.
void assert_registry_matches(const ObsRun& run) {
  const PipelineResult& result = run.result;
  const obs::MetricsSnapshot& m = result.metrics;
  ASSERT_FALSE(m.empty());

  // Owned pipeline counters vs PipelineResult / StageStats.
  EXPECT_EQ(metric(m, "pipeline.files"), double(result.records.size()));
  EXPECT_EQ(metric(m, "pipeline.dropped"), double(result.dropped_items));
  EXPECT_EQ(metric(m, "pipeline.compile.processed"),
            double(result.compile_stage.processed));
  EXPECT_EQ(metric(m, "pipeline.compile.rejected"),
            double(result.compile_stage.rejected));
  EXPECT_EQ(metric(m, "pipeline.compile.cache_hits"),
            double(result.compile_cache_hits));
  EXPECT_EQ(metric(m, "pipeline.compile.persisted_hits"),
            double(result.compile_persisted_hits));
  EXPECT_EQ(metric(m, "pipeline.execute.processed"),
            double(result.execute_stage.processed));
  EXPECT_EQ(metric(m, "pipeline.execute.rejected"),
            double(result.execute_stage.rejected));
  EXPECT_EQ(metric(m, "pipeline.execute.fused_instructions"),
            double(result.execute_fused_instructions));
  // The default executor follows the build's fusion default; with fusion on
  // a corpus this size always contains fusable sequences.
  EXPECT_EQ(result.execute_fusion, vm::default_fusion_enabled());
  if (result.execute_fusion) {
    EXPECT_GT(result.execute_fused_instructions, 0u);
    EXPECT_GT(result.execute_fusion_patterns, 0u);
  } else {
    EXPECT_EQ(result.execute_fused_instructions, 0u);
    EXPECT_EQ(result.execute_fusion_patterns, 0u);
  }
  EXPECT_EQ(metric(m, "pipeline.judge.processed"),
            double(result.judge_stage.processed));
  EXPECT_EQ(metric(m, "pipeline.judge.rejected"),
            double(result.judge_stage.rejected));
  EXPECT_EQ(metric(m, "pipeline.judge.cache_hits"),
            double(result.judge_cache_hits));
  EXPECT_EQ(metric(m, "pipeline.judge.cache_misses"),
            double(result.judge_cache_misses));
  EXPECT_EQ(metric(m, "pipeline.judge.persisted_hits"),
            double(result.judge_persisted_hits));
  EXPECT_EQ(metric(m, "pipeline.judge.errors"), double(result.judge_errors));
  // Chunk histogram count = total pops; its sum = items popped = files (in
  // kRecordAll nothing is filtered before the judge queue).
  EXPECT_EQ(metric(m, "pipeline.judge.chunk_size.sum"),
            double(result.judge_stage.processed));

  // Client probes vs ClientStats (the client served only this run).
  const llm::ClientStats stats = run.client->stats();
  EXPECT_EQ(metric(m, "pipeline.client.requests"), double(stats.requests));
  EXPECT_EQ(metric(m, "pipeline.client.gpu_seconds"), stats.gpu_seconds);
  EXPECT_EQ(metric(m, "pipeline.client.formed_batches"),
            double(stats.formed_batches));
  EXPECT_EQ(metric(m, "pipeline.client.flush_immediate"),
            double(stats.flush_immediate));
  EXPECT_EQ(metric(m, "pipeline.client.retries"), double(stats.retries));
  EXPECT_EQ(metric(m, "pipeline.client.failed_requests"),
            double(stats.failed_requests));
  EXPECT_EQ(metric(m, "pipeline.client.breaker_opens"),
            double(stats.breaker_opens));
  // The run-windowed PipelineResult resilience fields equal the client's
  // lifetime counters here because the client is run-scoped.
  EXPECT_EQ(double(result.judge_retries), double(stats.retries));
  EXPECT_EQ(double(result.judge_formed_batches),
            double(stats.formed_batches));

  // Judge cache probes vs JudgeCacheStats.
  const judge::JudgeCacheStats cache = run.judge->cache_stats();
  EXPECT_EQ(metric(m, "pipeline.judge_cache.hits"), double(cache.hits));
  EXPECT_EQ(metric(m, "pipeline.judge_cache.misses"), double(cache.misses));
  EXPECT_EQ(metric(m, "pipeline.judge_cache.evictions"),
            double(cache.evictions));
  EXPECT_EQ(metric(m, "pipeline.judge_cache.persisted_hits"),
            double(cache.persisted_hits));

  // Queue probes were captured in the snapshot (drained to empty).
  EXPECT_EQ(metric(m, "pipeline.queue.judge.depth"), 0.0);
  EXPECT_EQ(metric(m, "pipeline.queue.execute.depth"), 0.0);
  const double steals = metric(m, "pipeline.queue.compile.steals") +
                        metric(m, "pipeline.queue.execute.steals") +
                        metric(m, "pipeline.queue.judge.steals");
  EXPECT_EQ(steals, double(result.queue_steals));

  // The run-scoped probes were unregistered after the snapshot: a fresh
  // scrape keeps the owned counters but none of the probes.
  const auto later = run.registry->snapshot();
  EXPECT_EQ(obs::find_sample(later, "pipeline.queue.judge.depth"), nullptr);
  EXPECT_EQ(obs::find_sample(later, "pipeline.client.requests"), nullptr);
  EXPECT_NE(obs::find_sample(later, "pipeline.files"), nullptr);
}

/// Chaos accounting: judged + judge_errors == total, nothing dropped.
void assert_accounted(const PipelineResult& result) {
  ASSERT_EQ(result.records.size(), kCorpusSize);
  std::size_t judged = 0;
  std::size_t errored = 0;
  for (const auto& record : result.records) {
    EXPECT_FALSE(record.dropped);
    EXPECT_NE(record.judged, record.judge_error) << "record " << record.index;
    judged += record.judged ? 1 : 0;
    errored += record.judge_error ? 1 : 0;
  }
  EXPECT_EQ(judged + errored, kCorpusSize);
  EXPECT_EQ(result.judge_errors, errored);
  EXPECT_EQ(result.judge_stage.processed, kCorpusSize);
}

TEST(ObsConsistencyTest, RegistryMatchesLegacyAcrossChaosConfigs) {
  const auto files = make_corpus(1234);
  ASSERT_EQ(files.size(), kCorpusSize);
  struct Config {
    double rate;
    std::uint32_t attempts;
    bool cache;
    std::size_t batch;
  };
  for (const Config& config :
       {Config{0.0, 1, false, 1}, Config{0.0, 1, true, 4},
        Config{0.05, 4, false, 4}, Config{0.20, 4, false, 4}}) {
    SCOPED_TRACE("rate=" + std::to_string(config.rate) +
                 " attempts=" + std::to_string(config.attempts) +
                 " cache=" + std::to_string(config.cache) +
                 " batch=" + std::to_string(config.batch));
    const ObsRun run = run_observed(files, config.rate, config.attempts,
                                    config.cache, config.batch);
    assert_accounted(run.result);
    assert_registry_matches(run);
  }
}

TEST(ObsConsistencyTest, PaperModeSeedExactWithRegistryAndTracer) {
  // The tsan_stress / BM_PipelineMode paper-accounting corpus: 120 files,
  // gen.seed 1234, probe seed 77, cache off, sequential judging. The
  // registry and tracer must observe without perturbing the priced total.
  const auto suite = corpus::generate_suite(
      testutil::corpus_config(frontend::Flavor::kOpenACC, 120 + 32, 1234));
  probing::ProbingConfig probe;
  probe.issue_counts = {0, 0, 0, 0, 0, 120};
  probe.seed = 77;
  const auto probed = probing::probe_suite(suite, probe);
  std::vector<frontend::SourceFile> files;
  files.reserve(probed.files.size());
  for (const auto& pf : probed.files) files.push_back(pf.file);

  auto client = core::make_simulated_client(2);
  judge::JudgeCacheConfig cache;
  cache.enabled = false;
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect, cache);
  auto registry = std::make_shared<obs::Registry>();
  auto tracer = std::make_shared<obs::Tracer>();
  client->set_tracer(tracer);
  PipelineConfig config;
  config.mode = PipelineMode::kRecordAll;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 2;
  config.judge_batch_size = 1;
  config.registry = registry;
  config.trace = tracer;
  const ValidationPipeline pipe(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), judge, config);

  const auto result = pipe.run(files);
  EXPECT_NEAR(result.judge_gpu_seconds, 1606.13, 0.005);
  EXPECT_EQ(result.judge_stage.processed, files.size());
  EXPECT_EQ(obs::find_sample(result.metrics, "pipeline.judge.processed")
                ->value,
            double(files.size()));

  // Full trace coverage: one run span, one compile/execute/judge span per
  // file, and every judge span's flow id resolving to a flush origin in
  // the same trace (cache off: every decision was model-served).
  const auto events = tracer->collect();
  EXPECT_EQ(tracer->dropped(), 0u);
  std::size_t runs = 0, compiles = 0, executes = 0, judges = 0, flushes = 0;
  std::set<std::uint64_t> flow_origins;
  std::set<std::uint64_t> compile_traces;
  for (const auto& event : events) {
    switch (event.kind) {
      case obs::SpanKind::kRun: ++runs; break;
      case obs::SpanKind::kCompile:
        ++compiles;
        compile_traces.insert(event.trace_id);
        break;
      case obs::SpanKind::kExecute: ++executes; break;
      case obs::SpanKind::kJudge: ++judges; break;
      case obs::SpanKind::kFlush:
        ++flushes;
        flow_origins.insert(event.flow_id);
        break;
      default: break;
    }
    EXPECT_GE(event.end_us, event.start_us);
  }
  EXPECT_EQ(runs, 1u);
  EXPECT_EQ(compiles, files.size());
  EXPECT_EQ(executes, files.size());
  EXPECT_EQ(judges, files.size());
  EXPECT_EQ(flushes, files.size());  // batch size 1: one flush per file
  EXPECT_EQ(compile_traces.size(), files.size());  // distinct per-file ids
  for (const auto& event : events) {
    if (event.kind != obs::SpanKind::kJudge) continue;
    ASSERT_NE(event.flow_id, 0u) << "uncached judge span must carry a flow";
    EXPECT_EQ(flow_origins.count(event.flow_id), 1u);
  }
}

}  // namespace
}  // namespace llm4vv::pipeline
