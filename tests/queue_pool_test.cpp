#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "support/mpmc_queue.hpp"
#include "support/thread_pool.hpp"

namespace llm4vv::support {
namespace {

TEST(MpmcQueueTest, FifoOrderSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(MpmcQueueTest, ZeroCapacityThrows) {
  EXPECT_THROW(MpmcQueue<int>(0), std::invalid_argument);
}

TEST(MpmcQueueTest, TryPushFailsWhenFull) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(MpmcQueueTest, TryPopOnEmptyReturnsNullopt) {
  MpmcQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueueTest, CloseDrainsThenSignalsEnd) {
  MpmcQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueueTest, PushAfterCloseFails) {
  MpmcQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_FALSE(q.try_push(1));
}

TEST(MpmcQueueTest, BlockedConsumerWakesOnClose) {
  MpmcQueue<int> q(4);
  std::thread consumer([&] {
    const auto item = q.pop();
    EXPECT_FALSE(item.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(MpmcQueueTest, BlockedProducerWakesOnClose) {
  MpmcQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  std::thread producer([&] {
    EXPECT_FALSE(q.push(1));  // blocks on full queue, fails after close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
}

TEST(MpmcQueueTest, ConcurrentSumPreserved) {
  // 4 producers push 1000 items each through a small queue to 4 consumers;
  // the total must survive exactly (no loss, no duplication).
  MpmcQueue<int> q(16);
  std::atomic<long> total{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(q.push(p * 1000 + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto item = q.pop();
        if (!item) return;
        total.fetch_add(*item, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  long expected = 0;
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 1000; ++i) expected += p * 1000 + i;
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(MpmcQueueTest, CapacityAccessor) {
  MpmcQueue<int> q(33);
  EXPECT_EQ(q.capacity(), 33u);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(3);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, ZeroWorkersPromotedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ExceptionsDeliveredThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, WaitIdleWaitsForAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.post([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ManyTasksAcrossThreadsAllRun) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 500; ++i) {
    futures.push_back(pool.submit([&sum, i] {
      sum.fetch_add(i, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 500L * 501 / 2);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.post([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // join in destructor
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace llm4vv::support
