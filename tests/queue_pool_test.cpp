#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "support/mpmc_queue.hpp"
#include "support/thread_pool.hpp"

namespace llm4vv::support {
namespace {

TEST(MpmcQueueTest, FifoOrderSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(MpmcQueueTest, ZeroCapacityThrows) {
  EXPECT_THROW(MpmcQueue<int>(0), std::invalid_argument);
}

TEST(MpmcQueueTest, TryPushFailsWhenFull) {
  MpmcQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(MpmcQueueTest, TryPopOnEmptyReturnsNullopt) {
  MpmcQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcQueueTest, CloseDrainsThenSignalsEnd) {
  MpmcQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueueTest, PushAfterCloseFails) {
  MpmcQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.push(1));
  EXPECT_FALSE(q.try_push(1));
}

TEST(MpmcQueueTest, BlockedConsumerWakesOnClose) {
  MpmcQueue<int> q(4);
  std::thread consumer([&] {
    const auto item = q.pop();
    EXPECT_FALSE(item.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(MpmcQueueTest, BlockedProducerWakesOnClose) {
  MpmcQueue<int> q(1);
  ASSERT_TRUE(q.push(0));
  std::thread producer([&] {
    EXPECT_FALSE(q.push(1));  // blocks on full queue, fails after close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
}

TEST(MpmcQueueTest, ConcurrentSumPreserved) {
  // 4 producers push 1000 items each through a small queue to 4 consumers;
  // the total must survive exactly (no loss, no duplication).
  MpmcQueue<int> q(16);
  std::atomic<long> total{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 4; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(q.push(p * 1000 + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto item = q.pop();
        if (!item) return;
        total.fetch_add(*item, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  long expected = 0;
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 1000; ++i) expected += p * 1000 + i;
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(MpmcQueueTest, CapacityAccessor) {
  MpmcQueue<int> q(33);
  EXPECT_EQ(q.capacity(), 33u);
}

TEST(MpmcQueueTest, PushAllThenPopUpToKeepsOrder) {
  MpmcQueue<int> q(8);
  std::vector<int> in{1, 2, 3, 4, 5};
  EXPECT_EQ(q.push_all(in), 5u);
  std::vector<int> out;
  EXPECT_EQ(q.pop_up_to(3, out), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.pop_up_to(10, out), 2u);  // appends; returns what's left
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(MpmcQueueTest, PushAllLargerThanCapacityBlocksUntilDrained) {
  MpmcQueue<int> q(4);
  std::vector<int> in(64);
  std::iota(in.begin(), in.end(), 0);
  std::thread producer([&] { EXPECT_EQ(q.push_all(in), 64u); });
  std::vector<int> seen;
  while (seen.size() < 64) {
    ASSERT_GT(q.pop_up_to(8, seen), 0u);
  }
  producer.join();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(MpmcQueueTest, PushAllReportsTailLeftBehindOnClose) {
  MpmcQueue<int> q(2);
  std::vector<int> in{1, 2, 3, 4};
  std::thread producer([&] {
    // Fills to capacity, blocks, and fails once closed: only the first
    // burst fits, and the tail is reported as not-pushed.
    EXPECT_EQ(q.push_all(in), 2u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  // The tail [2, 4) was never moved out of `in`.
  EXPECT_EQ(in[2], 3);
  EXPECT_EQ(in[3], 4);
}

TEST(MpmcQueueTest, PopUpToBlockedConsumerWakesOnClose) {
  MpmcQueue<int> q(4);
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_EQ(q.pop_up_to(4, out), 0u);  // end-of-stream
    EXPECT_TRUE(out.empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(MpmcQueueTest, PopUpToDrainsAfterClose) {
  MpmcQueue<int> q(8);
  std::vector<int> in{7, 8, 9};
  EXPECT_EQ(q.push_all(in), 3u);
  q.close();
  std::vector<int> out;
  EXPECT_EQ(q.pop_up_to(16, out), 3u);  // close still drains buffered items
  EXPECT_EQ(q.pop_up_to(16, out), 0u);
  EXPECT_EQ(out, (std::vector<int>{7, 8, 9}));
}

TEST(MpmcQueueTest, PopUpToZeroReturnsImmediately) {
  MpmcQueue<int> q(4);
  std::vector<int> out;
  EXPECT_EQ(q.pop_up_to(0, out), 0u);
}

TEST(MpmcQueueTest, BatchedConcurrentSumPreserved) {
  // Batched producers and consumers move 4000 items through a small queue;
  // nothing may be lost or duplicated.
  MpmcQueue<int> q(16);
  std::atomic<long> total{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&q, p] {
      for (int chunk = 0; chunk < 10; ++chunk) {
        std::vector<int> batch;
        for (int i = 0; i < 100; ++i) batch.push_back(p * 1000 + chunk * 100 + i);
        ASSERT_EQ(q.push_all(batch), batch.size());
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      for (;;) {
        batch.clear();
        if (q.pop_up_to(7, batch) == 0) return;
        for (const int v : batch) {
          total.fetch_add(v, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  long expected = 0;
  for (int p = 0; p < 4; ++p) {
    for (int chunk = 0; chunk < 10; ++chunk) {
      for (int i = 0; i < 100; ++i) expected += p * 1000 + chunk * 100 + i;
    }
  }
  EXPECT_EQ(total.load(), expected);
}

// ---------------------------------------------------------------------------
// Sharded MpmcQueue (PR 5): the lock-striped configuration must preserve
// every blocking/draining/accounting contract of the single-mutex queue;
// only cross-shard ordering is given up.
// ---------------------------------------------------------------------------

TEST(ShardedMpmcQueueTest, ShardCountAndCapacityAccessors) {
  MpmcQueue<int> q(33, 4);
  EXPECT_EQ(q.capacity(), 33u);   // requested bound, as before
  EXPECT_EQ(q.shard_count(), 4u);
  MpmcQueue<int> zero_shards(8, 0);  // promoted to 1, not rejected
  EXPECT_EQ(zero_shards.shard_count(), 1u);
  EXPECT_THROW(MpmcQueue<int>(0, 4), std::invalid_argument);
}

TEST(ShardedMpmcQueueTest, AllItemsSurviveAcrossShards) {
  // 8 items through capacity 8 / 4 shards (2 per shard): the single
  // producer overflows its home shard and stripes across all of them; a
  // consumer on another thread must retrieve every item exactly once.
  MpmcQueue<int> q(8, 4);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 8u);
  q.close();
  std::vector<bool> seen(8, false);
  std::thread consumer([&] {
    for (;;) {
      const auto item = q.pop();
      if (!item) return;
      ASSERT_GE(*item, 0);
      ASSERT_LT(*item, 8);
      EXPECT_FALSE(seen[static_cast<std::size_t>(*item)]);
      seen[static_cast<std::size_t>(*item)] = true;
    }
  });
  consumer.join();
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(seen[static_cast<std::size_t>(i)]);
}

TEST(ShardedMpmcQueueTest, StealsCountedWhenDrainingForeignShards) {
  // One producer thread fills all 4 shards (capacity 2 each); a consumer
  // on a different thread has ONE home shard, so at least 6 of its 8 pops
  // must be steals, whatever the thread-id hash picks.
  MpmcQueue<int> q(8, 4);
  std::thread producer([&] {
    for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.push(i));
  });
  producer.join();
  q.close();
  std::thread consumer([&] {
    while (q.pop().has_value()) {
    }
  });
  consumer.join();
  EXPECT_GE(q.steals(), 6u);
}

TEST(ShardedMpmcQueueTest, StealScanCoversEveryShardAndLosesNothing) {
  // The steal-scan hint redirects thieves to the last non-empty shard; the
  // correctness property it must preserve is full coverage — whatever the
  // hint says, a scan must still find an item parked in ANY single shard.
  // Park items shard by shard (producer fills all 4, a foreign consumer
  // drains between rounds so the hint keeps moving) and verify every item
  // comes back.
  MpmcQueue<int> q(64, 4);
  std::vector<bool> seen(64, false);
  for (int round = 0; round < 8; ++round) {
    std::thread producer([&] {
      for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.push(round * 8 + i));
    });
    producer.join();
    std::thread consumer([&] {
      for (int i = 0; i < 8; ++i) {
        const auto item = q.try_pop();
        ASSERT_TRUE(item.has_value());
        seen[static_cast<std::size_t>(*item)] = true;
      }
      EXPECT_FALSE(q.try_pop().has_value());  // scan agrees the queue is dry
    });
    consumer.join();
  }
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(seen[static_cast<std::size_t>(i)]);
}

TEST(ShardedMpmcQueueTest, ConcurrentSumPreservedSharded) {
  MpmcQueue<int> q(16, 4);
  std::atomic<long> total{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(q.push(p * 1000 + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      for (;;) {
        const auto item = q.pop();
        if (!item) return;
        total.fetch_add(*item, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  long expected = 0;
  for (int p = 0; p < 4; ++p) {
    for (int i = 0; i < 1000; ++i) expected += p * 1000 + i;
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ShardedMpmcQueueTest, BatchedOpsPreservedSharded) {
  // push_all / pop_up_to across shards: totals survive, push_all reports
  // full acceptance, pop_up_to(0) still ends the stream.
  MpmcQueue<int> q(16, 4);
  std::atomic<long> total{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&q, p] {
      for (int chunk = 0; chunk < 10; ++chunk) {
        std::vector<int> batch;
        for (int i = 0; i < 100; ++i) {
          batch.push_back(p * 1000 + chunk * 100 + i);
        }
        ASSERT_EQ(q.push_all(batch), batch.size());
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      for (;;) {
        batch.clear();
        if (q.pop_up_to(7, batch) == 0) return;
        for (const int v : batch) {
          total.fetch_add(v, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  long expected = 0;
  for (int p = 0; p < 3; ++p) {
    for (int chunk = 0; chunk < 10; ++chunk) {
      for (int i = 0; i < 100; ++i) expected += p * 1000 + chunk * 100 + i;
    }
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ShardedMpmcQueueTest, PopUpToGathersAcrossShards) {
  // A single burst must sweep sibling shards until full: items striped
  // across 4 shards by one producer come back as ONE chunk of 8, not a
  // fragment per shard (fragmented chunks would shrink the judge stage's
  // submission groups downstream).
  MpmcQueue<int> q(8, 4);  // 2 slots per shard
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.push(i));
  std::vector<int> out;
  EXPECT_EQ(q.pop_up_to(8, out), 8u);
  EXPECT_EQ(out.size(), 8u);
}

TEST(ShardedMpmcQueueTest, BlockedConsumerWakesOnShardedPush) {
  MpmcQueue<int> q(8, 4);
  std::thread consumer([&] {
    const auto item = q.pop();  // sleeps on the gate until the push lands
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, 77);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(q.push(77));
  consumer.join();
}

TEST(ShardedMpmcQueueTest, BlockedProducerWakesOnShardedPop) {
  MpmcQueue<int> q(4, 4);  // one slot per shard
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.push(i));
  std::thread producer([&] {
    EXPECT_TRUE(q.push(99));  // every shard full: blocks on the gate
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(q.pop().has_value());
  producer.join();
  q.close();
  std::size_t drained = 0;
  while (q.pop().has_value()) ++drained;
  EXPECT_EQ(drained, 4u);  // 3 originals + the unblocked 99
}

TEST(ShardedMpmcQueueTest, CloseWakesShardedWaiters) {
  MpmcQueue<int> q(4, 4);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
  EXPECT_FALSE(q.push(5));  // producers fail immediately after close
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(3);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, ZeroWorkersPromotedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ExceptionsDeliveredThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, WaitIdleWaitsForAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.post([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ManyTasksAcrossThreadsAllRun) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 500; ++i) {
    futures.push_back(pool.submit([&sum, i] {
      sum.fetch_add(i, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 500L * 501 / 2);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.post([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // join in destructor
  EXPECT_EQ(done.load(), 64);
}

}  // namespace
}  // namespace llm4vv::support
