#include <gtest/gtest.h>

#include "directive/validator.hpp"
#include "frontend/fortran.hpp"
#include "frontend/sema.hpp"
#include "vm/interp.hpp"
#include "vm/lower.hpp"

namespace llm4vv::frontend {
namespace {

vm::ExecResult run_fortran(const std::string& source,
                           DiagnosticEngine& diags) {
  ParserOptions popts;
  popts.pragma_takes_statement = directive::pragma_takes_statement;
  auto program = parse_fortran(source, diags, popts);
  if (!diags.has_errors()) analyze(program, diags);
  if (!diags.has_errors()) {
    directive::ValidatorOptions vopts;
    vopts.flavor = Flavor::kOpenACC;
    directive::validate_program(program, vopts, diags);
  }
  if (diags.has_errors()) return {};
  return vm::execute(vm::lower(program, {}));
}

vm::ExecResult run_ok(const std::string& source) {
  DiagnosticEngine diags;
  auto result = run_fortran(source, diags);
  EXPECT_FALSE(diags.has_errors())
      << (diags.diagnostics().empty() ? ""
                                      : diags.diagnostics()[0].message);
  return result;
}

TEST(FortranTest, MinimalProgramExitsZero) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "end program t\n");
  EXPECT_EQ(result.return_code, 0);
}

TEST(FortranTest, DoLoopAccumulates) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  integer :: i, s\n"
      "  s = 0\n"
      "  do i = 1, 10\n"
      "    s = s + i\n"
      "  end do\n"
      "  call exit(s)\n"
      "end program t\n");
  EXPECT_EQ(result.return_code, 55);
}

TEST(FortranTest, FixedArraysAreOneBased) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  integer, parameter :: n = 8\n"
      "  integer :: i\n"
      "  real(8) :: a(n)\n"
      "  do i = 1, n\n"
      "    a(i) = i * 2.0\n"
      "  end do\n"
      "  call exit(int(a(n)))\n"
      "end program t\n");
  EXPECT_EQ(result.return_code, 16);
}

TEST(FortranTest, AllocatableRoundTrip) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  integer :: i\n"
      "  real(8), allocatable :: a(:)\n"
      "  allocate(a(4))\n"
      "  do i = 1, 4\n"
      "    a(i) = 1.5\n"
      "  end do\n"
      "  deallocate(a)\n"
      "  call exit(0)\n"
      "end program t\n");
  EXPECT_EQ(result.return_code, 0);
}

TEST(FortranTest, MissingAllocateTraps) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  real(8), allocatable :: a(:)\n"
      "  a(1) = 1.0\n"
      "end program t\n");
  EXPECT_EQ(result.trap, vm::TrapKind::kNullDeref);
}

TEST(FortranTest, IfElseBlocks) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  integer :: x\n"
      "  x = 3\n"
      "  if (x > 2) then\n"
      "    x = 10\n"
      "  else\n"
      "    x = 20\n"
      "  end if\n"
      "  call exit(x)\n"
      "end program t\n");
  EXPECT_EQ(result.return_code, 10);
}

TEST(FortranTest, OneLineIf) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  integer :: x\n"
      "  x = 1\n"
      "  if (x == 1) x = 9\n"
      "  call exit(x)\n"
      "end program t\n");
  EXPECT_EQ(result.return_code, 9);
}

TEST(FortranTest, LogicalOperatorsAndNe) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  integer :: a, b, r\n"
      "  a = 1\n"
      "  b = 2\n"
      "  r = 0\n"
      "  if (a == 1 .and. b /= 3) then\n"
      "    r = 4\n"
      "  end if\n"
      "  if (a > 5 .or. b >= 2) then\n"
      "    r = r + 1\n"
      "  end if\n"
      "  call exit(r)\n"
      "end program t\n");
  EXPECT_EQ(result.return_code, 5);
}

TEST(FortranTest, PrintWritesStdout) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  print *, 'Test PASSED'\n"
      "end program t\n");
  EXPECT_NE(result.stdout_text.find("Test PASSED"), std::string::npos);
}

TEST(FortranTest, StopWithCode) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  stop 2\n"
      "end program t\n");
  EXPECT_EQ(result.return_code, 2);
}

TEST(FortranTest, AbsMapsToFabs) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  real(8) :: x\n"
      "  x = -3.5\n"
      "  call exit(int(abs(x)))\n"
      "end program t\n");
  EXPECT_EQ(result.return_code, 3);
}

TEST(FortranTest, AccDirectiveBecomesPragma) {
  DiagnosticEngine diags;
  ParserOptions popts;
  popts.pragma_takes_statement = directive::pragma_takes_statement;
  const auto program = parse_fortran(
      "program t\n"
      "  implicit none\n"
      "  integer :: i\n"
      "  real(8) :: a(4)\n"
      "  !$acc parallel loop copy(a(1:4))\n"
      "  do i = 1, 4\n"
      "    a(i) = i\n"
      "  end do\n"
      "end program t\n",
      diags, popts);
  ASSERT_EQ(program.pragmas.size(), 1u);
  EXPECT_NE(program.pragmas[0]->then_branch, nullptr);
  EXPECT_EQ(program.pragmas[0]->pragma_text.substr(0, 5), "!$acc");
}

TEST(FortranTest, DeviceOffloadWorksEndToEnd) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  integer :: i, errs\n"
      "  real(8), allocatable :: a(:)\n"
      "  allocate(a(8))\n"
      "  errs = 0\n"
      "  do i = 1, 8\n"
      "    a(i) = 1.0\n"
      "  end do\n"
      "  !$acc parallel loop copy(a(1:8))\n"
      "  do i = 1, 8\n"
      "    a(i) = a(i) + 1.0\n"
      "  end do\n"
      "  do i = 1, 8\n"
      "    if (abs(a(i) - 2.0) > 1e-9) then\n"
      "      errs = errs + 1\n"
      "    end if\n"
      "  end do\n"
      "  call exit(errs)\n"
      "end program t\n");
  EXPECT_EQ(result.return_code, 0);
}

TEST(FortranTest, MissingEndDoIsStructuralError) {
  DiagnosticEngine diags;
  run_fortran(
      "program t\n"
      "  implicit none\n"
      "  integer :: i, s\n"
      "  s = 0\n"
      "  do i = 1, 3\n"
      "    s = s + i\n"
      "  call exit(s)\n"
      "end program t\n",
      diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(FortranTest, MissingEndIfIsStructuralError) {
  DiagnosticEngine diags;
  run_fortran(
      "program t\n"
      "  implicit none\n"
      "  integer :: x\n"
      "  x = 0\n"
      "  if (x == 0) then\n"
      "    x = 1\n"
      "  call exit(x)\n"
      "end program t\n",
      diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(FortranTest, MissingProgramStatementReported) {
  DiagnosticEngine diags;
  run_fortran("  integer :: x\n  x = 1\nend\n", diags);
  EXPECT_TRUE(diags.has_code(DiagCode::kMissingMain));
}

TEST(FortranTest, ExitAndCycleInsideDo) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  integer :: i, c\n"
      "  c = 0\n"
      "  do i = 1, 10\n"
      "    if (i == 6) exit\n"
      "    if (mod(i, 2) == 0) cycle\n"
      "    c = c + 1\n"
      "  end do\n"
      "  call exit(c)\n"
      "end program t\n");
  EXPECT_EQ(result.return_code, 3);  // i = 1, 3, 5
}

TEST(FortranTest, PowerOperatorViaPow) {
  const auto result = run_ok(
      "program t\n"
      "  implicit none\n"
      "  real(8) :: x\n"
      "  x = 2.0 ** 5\n"
      "  call exit(int(x))\n"
      "end program t\n");
  EXPECT_EQ(result.return_code, 32);
}

}  // namespace
}  // namespace llm4vv::frontend
