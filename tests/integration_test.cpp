// End-to-end integration tests across module boundaries that the unit
// suites do not cross: experiment runners, report rendering, and the
// library's user-facing flows from the examples.
#include <gtest/gtest.h>

#include "core/llm4vv.hpp"
#include "tests/test_util.hpp"

namespace llm4vv {
namespace {

using frontend::Flavor;

TEST(IntegrationTest, SmallEndToEndFlowBothFlavors) {
  for (const auto flavor : {Flavor::kOpenACC, Flavor::kOpenMP}) {
    const auto suite =
        corpus::generate_suite(testutil::corpus_config(flavor, 80, 1001));

    probing::ProbingConfig probe;
    probe.issue_counts = {6, 6, 6, 6, 6, 30};
    probe.seed = 5;
    const auto probed = probing::probe_suite(suite, probe);

    auto client = core::make_simulated_client(2);
    auto judge = std::make_shared<const judge::Llmj>(
        client, llm::PromptStyle::kAgentDirect);
    pipeline::PipelineConfig config;
    config.compile_workers = 2;
    config.execute_workers = 2;
    config.judge_workers = 2;
    const pipeline::ValidationPipeline pipe(
        testutil::clean_driver(flavor), toolchain::Executor(), judge,
        config);

    std::vector<frontend::SourceFile> files;
    for (const auto& pf : probed.files) files.push_back(pf.file);
    const auto result = pipe.run(files);

    std::vector<metrics::JudgmentRecord> judgments;
    for (std::size_t i = 0; i < probed.files.size(); ++i) {
      judgments.push_back(metrics::JudgmentRecord{
          probed.files[i].issue, result.records[i].pipeline_says_valid});
    }
    const auto report = metrics::evaluate(judgments);
    // Sanity envelope: the pipeline is far better than chance on an
    // invalid-majority batch and never perfect on the hard classes.
    EXPECT_GT(report.overall_accuracy, 0.6)
        << frontend::flavor_name(flavor);
    EXPECT_DOUBLE_EQ(report.per_issue[1].accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(report.per_issue[2].accuracy(), 1.0);
  }
}

TEST(IntegrationTest, ExperimentSuitesMatchPaperComposition) {
  const auto acc_one = core::build_part_one_suite(Flavor::kOpenACC, {});
  EXPECT_EQ(acc_one.size(), 1335u);
  bool has_fortran = false;
  for (const auto& pf : acc_one.files) {
    if (pf.file.language == frontend::Language::kFortran) {
      has_fortran = true;
      break;
    }
  }
  EXPECT_TRUE(has_fortran);  // "a small set of Fortran files"

  const auto omp_one = core::build_part_one_suite(Flavor::kOpenMP, {});
  EXPECT_EQ(omp_one.size(), 431u);
  for (const auto& pf : omp_one.files) {
    EXPECT_NE(pf.file.language, frontend::Language::kFortran);
    EXPECT_NE(pf.file.language, frontend::Language::kCpp);  // "only C files"
  }

  const auto acc_two = core::build_part_two_suite(Flavor::kOpenACC, {});
  EXPECT_EQ(acc_two.size(), 1782u);
  const auto omp_two = core::build_part_two_suite(Flavor::kOpenMP, {});
  EXPECT_EQ(omp_two.size(), 296u);
  for (const auto& pf : omp_two.files) {
    EXPECT_NE(pf.file.language, frontend::Language::kFortran);
  }
}

TEST(IntegrationTest, ReportRenderingRoundTrip) {
  const auto outcome = core::run_part_one(Flavor::kOpenMP);
  const auto table = core::render_issue_table(
      "Table II check", Flavor::kOpenMP, core::table2_llmj_omp(),
      outcome.report);
  EXPECT_NE(table.find("Removed an opening bracket"), std::string::npos);
  EXPECT_NE(table.find("Paper Acc"), std::string::npos);
  EXPECT_NE(table.find("Measured Acc"), std::string::npos);

  const auto overall = core::render_overall_table(
      "Table III check", "LLMJ", core::table3_overall(Flavor::kOpenMP),
      outcome.report);
  EXPECT_NE(overall.find("Overall LLMJ Accuracy"), std::string::npos);
  EXPECT_NE(overall.find("LLMJ Bias"), std::string::npos);
}

TEST(IntegrationTest, TwoMethodReportRendering) {
  const auto outcome = core::run_part_two(Flavor::kOpenMP);
  const auto table = core::render_issue_table2(
      "Table V check", Flavor::kOpenMP, "Pipeline 1",
      core::table5_pipeline_omp(1), outcome.pipeline1_report, "Pipeline 2",
      core::table5_pipeline_omp(2), outcome.pipeline2_report);
  EXPECT_NE(table.find("Pipeline 1 Paper"), std::string::npos);
  EXPECT_NE(table.find("Pipeline 2 Measured"), std::string::npos);

  const auto overall = core::render_overall_table2(
      "Table VI check", "Pipeline 1", core::table6_overall(Flavor::kOpenMP, 1),
      outcome.pipeline1_report, "Pipeline 2",
      core::table6_overall(Flavor::kOpenMP, 2), outcome.pipeline2_report);
  EXPECT_NE(overall.find("Total Pipeline 2 Mistakes"), std::string::npos);
}

TEST(IntegrationTest, LlmStatsAccumulateAcrossPipelinePasses) {
  const auto outcome = core::run_part_two(Flavor::kOpenMP);
  // Two record-all passes over 296 files.
  EXPECT_EQ(outcome.llm_stats.requests, 2u * 296u);
  EXPECT_GT(outcome.llm_stats.gpu_seconds, 0.0);
}

TEST(IntegrationTest, RadarFigurePipelineMatchesReports) {
  const auto outcome = core::run_part_two(Flavor::kOpenMP);
  const auto axes = metrics::radar_axes(outcome.pipeline1_report);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(axes[i],
                     outcome.pipeline1_report.per_issue[i].accuracy());
  }
  const auto figure = metrics::render_radar(
      {axes}, {"Pipeline 1"}, metrics::radar_axis_labels(Flavor::kOpenMP));
  EXPECT_NE(figure.find("Pipeline 1"), std::string::npos);
}

TEST(IntegrationTest, CustomModelPluggableThroughClient) {
  // The examples/custom_model.cpp flow, condensed.
  class EchoModel final : public llm::LanguageModel {
   public:
    std::string name() const override { return "echo"; }
    llm::Completion generate(const std::string&,
                             const llm::GenerationParams&) const override {
      llm::Completion completion;
      completion.text = "FINAL JUDGEMENT: invalid";
      completion.completion_tokens = 4;
      return completion;
    }
  };
  auto client = std::make_shared<llm::ModelClient>(
      std::make_shared<EchoModel>(), 1);
  const judge::Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const auto tc = corpus::generate_one("saxpy_offload", Flavor::kOpenACC,
                                       frontend::Language::kC, 1);
  const auto decision = judge.evaluate(tc.file);
  EXPECT_EQ(decision.verdict, judge::Verdict::kInvalid);
}

}  // namespace
}  // namespace llm4vv
