#include <gtest/gtest.h>

#include "core/export.hpp"
#include "support/csv.hpp"
#include "support/strings.hpp"

namespace llm4vv::core {
namespace {

using frontend::Flavor;

const PartTwoOutcome& outcome() {
  static const PartTwoOutcome cached = run_part_two(Flavor::kOpenMP);
  return cached;
}

TEST(ExportTest, CsvHasHeaderAndOneRowPerFile) {
  const auto rows = support::csv_parse(export_part_two_csv(outcome()));
  ASSERT_EQ(rows.size(), 1u + outcome().suite.files.size());
  EXPECT_EQ(rows[0][0], "file");
  EXPECT_EQ(rows[0].size(), 13u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].size(), rows[0].size());
  }
}

TEST(ExportTest, CsvVerdictsMatchReports) {
  const auto rows = support::csv_parse(export_part_two_csv(outcome()));
  // Recompute pipeline-1 mistakes from the CSV and compare to the report.
  std::size_t mistakes = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    const bool truth = rows[i][4] == "1";
    const bool verdict = rows[i][11] == "1";
    if (truth != verdict) ++mistakes;
  }
  EXPECT_EQ(mistakes, outcome().pipeline1_report.total_mistakes);
}

TEST(ExportTest, JsonlIsOneValidObjectPerLine) {
  const auto lines =
      support::split_lines(export_part_two_jsonl(outcome()));
  ASSERT_EQ(lines.size(), outcome().suite.files.size());
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"issue\":"), std::string::npos);
    EXPECT_NE(line.find("\"pipeline1_valid\":"), std::string::npos);
  }
}

TEST(ExportTest, PartOneCsvRoundTrips) {
  const auto part_one = run_part_one(Flavor::kOpenMP);
  const auto rows = support::csv_parse(export_part_one_csv(part_one));
  ASSERT_EQ(rows.size(), 1u + part_one.suite.files.size());
  std::size_t mistakes = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if ((rows[i][4] == "1") != (rows[i][5] == "1")) ++mistakes;
  }
  EXPECT_EQ(mistakes, part_one.report.total_mistakes);
}

}  // namespace
}  // namespace llm4vv::core
