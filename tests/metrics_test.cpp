#include <gtest/gtest.h>

#include "metrics/metrics.hpp"

namespace llm4vv::metrics {
namespace {

using probing::IssueType;

JudgmentRecord record(IssueType issue, bool says_valid) {
  return JudgmentRecord{issue, says_valid};
}

TEST(MetricsTest, EmptyInputIsAllZero) {
  const auto report = evaluate({});
  EXPECT_EQ(report.total_count, 0u);
  EXPECT_EQ(report.total_mistakes, 0u);
  EXPECT_DOUBLE_EQ(report.overall_accuracy, 0.0);
  EXPECT_DOUBLE_EQ(report.bias, 0.0);
}

TEST(MetricsTest, PerfectJudgeScoresOne) {
  std::vector<JudgmentRecord> records = {
      record(IssueType::kNoIssue, true),
      record(IssueType::kRemovedOpeningBracket, false),
      record(IssueType::kReplacedWithPlainCode, false),
  };
  const auto report = evaluate(records);
  EXPECT_DOUBLE_EQ(report.overall_accuracy, 1.0);
  EXPECT_EQ(report.total_mistakes, 0u);
  EXPECT_DOUBLE_EQ(report.bias, 0.0);
}

TEST(MetricsTest, HandComputedAccuracies) {
  std::vector<JudgmentRecord> records = {
      // issue 1: 1 correct, 1 wrong
      record(IssueType::kRemovedOpeningBracket, false),
      record(IssueType::kRemovedOpeningBracket, true),
      // valid: 3 correct, 1 wrong
      record(IssueType::kNoIssue, true),
      record(IssueType::kNoIssue, true),
      record(IssueType::kNoIssue, true),
      record(IssueType::kNoIssue, false),
  };
  const auto report = evaluate(records);
  EXPECT_EQ(report.per_issue[1].count, 2u);
  EXPECT_EQ(report.per_issue[1].correct, 1u);
  EXPECT_DOUBLE_EQ(report.per_issue[1].accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(report.per_issue[5].accuracy(), 0.75);
  EXPECT_DOUBLE_EQ(report.overall_accuracy, 4.0 / 6.0);
  EXPECT_EQ(report.total_mistakes, 2u);
  // One permissive mistake (+1), one restrictive (-1) -> bias 0.
  EXPECT_DOUBLE_EQ(report.bias, 0.0);
}

TEST(MetricsTest, PurePermissivenessGivesBiasPlusOne) {
  std::vector<JudgmentRecord> records = {
      record(IssueType::kUndeclaredVariable, true),
      record(IssueType::kReplacedWithPlainCode, true),
      record(IssueType::kNoIssue, true),  // correct, no bias contribution
  };
  const auto report = evaluate(records);
  EXPECT_DOUBLE_EQ(report.bias, 1.0);
}

TEST(MetricsTest, PureRestrictivenessGivesBiasMinusOne) {
  std::vector<JudgmentRecord> records = {
      record(IssueType::kNoIssue, false),
      record(IssueType::kNoIssue, false),
      record(IssueType::kRemovedOpeningBracket, false),  // correct
  };
  const auto report = evaluate(records);
  EXPECT_DOUBLE_EQ(report.bias, -1.0);
}

TEST(MetricsTest, BiasAlwaysInRange) {
  support::Rng rng(5);
  std::vector<JudgmentRecord> records;
  for (int i = 0; i < 500; ++i) {
    records.push_back(record(
        static_cast<IssueType>(rng.next_below(6)), rng.chance(0.5)));
  }
  const auto report = evaluate(records);
  EXPECT_GE(report.bias, -1.0);
  EXPECT_LE(report.bias, 1.0);
  EXPECT_GE(report.overall_accuracy, 0.0);
  EXPECT_LE(report.overall_accuracy, 1.0);
}

TEST(MetricsTest, AggregateEqualsPerIssueRecomputation) {
  support::Rng rng(9);
  std::vector<JudgmentRecord> records;
  for (int i = 0; i < 300; ++i) {
    records.push_back(record(
        static_cast<IssueType>(rng.next_below(6)), rng.chance(0.6)));
  }
  const auto report = evaluate(records);
  std::size_t total = 0;
  std::size_t correct = 0;
  for (const auto& row : report.per_issue) {
    total += row.count;
    correct += row.correct;
    EXPECT_EQ(row.count, row.correct + row.incorrect);
  }
  EXPECT_EQ(total, report.total_count);
  EXPECT_DOUBLE_EQ(report.overall_accuracy,
                   static_cast<double>(correct) /
                       static_cast<double>(total));
}

TEST(RadarTest, AxesMirrorPerIssueAccuracy) {
  std::vector<JudgmentRecord> records = {
      record(IssueType::kRemovedOpeningBracket, false),
      record(IssueType::kNoIssue, true),
      record(IssueType::kNoIssue, false),
  };
  const auto axes = radar_axes(evaluate(records));
  EXPECT_DOUBLE_EQ(axes[1], 1.0);
  EXPECT_DOUBLE_EQ(axes[5], 0.5);
  EXPECT_DOUBLE_EQ(axes[0], 0.0);  // empty rows render as 0
}

TEST(RadarTest, AxisLabelsAreFlavorAware) {
  const auto acc = radar_axis_labels(frontend::Flavor::kOpenACC);
  const auto omp = radar_axis_labels(frontend::Flavor::kOpenMP);
  EXPECT_NE(acc[0].find("OpenACC"), std::string::npos);
  EXPECT_NE(omp[3].find("OpenMP"), std::string::npos);
}

TEST(RadarTest, RenderContainsMarkersLegendAndValues) {
  const std::array<double, 6> series1 = {0.9, 0.8, 0.7, 0.6, 0.5, 1.0};
  const std::array<double, 6> series2 = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
  const auto text = render_radar(
      {series1, series2}, {"first", "second"},
      radar_axis_labels(frontend::Flavor::kOpenACC));
  EXPECT_NE(text.find('1'), std::string::npos);
  EXPECT_NE(text.find('2'), std::string::npos);
  EXPECT_NE(text.find("[1] first"), std::string::npos);
  EXPECT_NE(text.find("[2] second"), std::string::npos);
  EXPECT_NE(text.find("90%"), std::string::npos);
  EXPECT_NE(text.find("Valid tests"), std::string::npos);
}

TEST(RadarTest, ZeroSeriesStillRenders) {
  const std::array<double, 6> zeros{};
  const auto text = render_radar({zeros}, {"flat"},
                                 radar_axis_labels(frontend::Flavor::kOpenMP));
  EXPECT_NE(text.find("[1] flat"), std::string::npos);
}

}  // namespace
}  // namespace llm4vv::metrics
