#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "probing/prober.hpp"
#include "support/strings.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::probing {
namespace {

using frontend::Flavor;
using frontend::Language;

corpus::Suite base_suite(Flavor flavor, std::size_t count) {
  return corpus::generate_suite(testutil::corpus_config(flavor, count, 4711));
}

// ---------------------------------------------------------------------------
// Mutation invariants, parameterized over the whole base suite
// ---------------------------------------------------------------------------

class MutationInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(MutationInvariantTest, MutatedFileDiffersFromSource) {
  const auto issue = static_cast<IssueType>(GetParam());
  const auto suite = base_suite(Flavor::kOpenACC, 12);
  support::Rng rng(3);
  for (const auto& tc : suite.cases) {
    const auto mutated = apply_mutation(tc.file.content, tc.file.language,
                                        issue, {}, rng);
    if (!mutated) continue;
    EXPECT_NE(*mutated, tc.file.content) << tc.file.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Issues0to4, MutationInvariantTest,
                         ::testing::Range(0, 5));

TEST(MutationTest, NoIssueIsIdentity) {
  const auto suite = base_suite(Flavor::kOpenACC, 4);
  support::Rng rng(3);
  for (const auto& tc : suite.cases) {
    const auto out = apply_mutation(tc.file.content, tc.file.language,
                                    IssueType::kNoIssue, {}, rng);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, tc.file.content);
  }
}

TEST(MutationTest, OpeningBracketRemovesExactlyOneBrace) {
  const auto suite = base_suite(Flavor::kOpenACC, 10);
  support::Rng rng(5);
  for (const auto& tc : suite.cases) {
    const auto mutated =
        apply_mutation(tc.file.content, tc.file.language,
                       IssueType::kRemovedOpeningBracket, {}, rng);
    ASSERT_TRUE(mutated.has_value());
    const auto count = [](const std::string& s, char c) {
      return std::count(s.begin(), s.end(), c);
    };
    EXPECT_EQ(count(*mutated, '{'), count(tc.file.content, '{') - 1);
    EXPECT_EQ(count(*mutated, '}'), count(tc.file.content, '}'));
  }
}

TEST(MutationTest, BracketRemovalBreaksCompilation) {
  const auto suite = base_suite(Flavor::kOpenACC, 12);
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  support::Rng rng(6);
  for (const auto& tc : suite.cases) {
    const auto mutated =
        apply_mutation(tc.file.content, tc.file.language,
                       IssueType::kRemovedOpeningBracket, {}, rng);
    ASSERT_TRUE(mutated.has_value());
    frontend::SourceFile file = tc.file;
    file.content = *mutated;
    EXPECT_FALSE(driver.compile(file).success) << file.name;
  }
}

TEST(MutationTest, UndeclaredVariableBreaksCompilation) {
  const auto suite = base_suite(Flavor::kOpenMP, 12);
  const auto driver = testutil::clean_driver(Flavor::kOpenMP);
  support::Rng rng(7);
  for (const auto& tc : suite.cases) {
    const auto mutated =
        apply_mutation(tc.file.content, tc.file.language,
                       IssueType::kUndeclaredVariable, {}, rng);
    ASSERT_TRUE(mutated.has_value());
    EXPECT_NE(mutated->find("undeclared_"), std::string::npos);
    frontend::SourceFile file = tc.file;
    file.content = *mutated;
    EXPECT_FALSE(driver.compile(file).success) << file.name;
  }
}

TEST(MutationTest, SwappedDirectiveBreaksCompilation) {
  const auto suite = base_suite(Flavor::kOpenACC, 12);
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  MutationConfig config;
  config.swap_directive_share = 1.0;  // force the swap arm
  support::Rng rng(8);
  for (const auto& tc : suite.cases) {
    const auto mutated = apply_mutation(
        tc.file.content, tc.file.language,
        IssueType::kRemovedAllocOrSwappedDirective, config, rng);
    ASSERT_TRUE(mutated.has_value());
    frontend::SourceFile file = tc.file;
    file.content = *mutated;
    EXPECT_FALSE(driver.compile(file).success) << file.name << *mutated;
  }
}

TEST(MutationTest, RemovedAllocationCompilesButFailsAtRuntime) {
  const auto suite = base_suite(Flavor::kOpenACC, 20);
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const toolchain::Executor executor;
  MutationConfig config;
  config.swap_directive_share = 0.0;  // force the allocation arm
  support::Rng rng(9);
  int runtime_failures = 0;
  int applicable = 0;
  for (const auto& tc : suite.cases) {
    // Templates without a heap allocation fall back to the directive-swap
    // arm even at share 0; only the true allocation-removal arm is under
    // test here.
    if (tc.file.content.find(")malloc(") == std::string::npos) continue;
    const auto mutated = apply_mutation(
        tc.file.content, tc.file.language,
        IssueType::kRemovedAllocOrSwappedDirective, config, rng);
    if (!mutated) continue;
    ++applicable;
    frontend::SourceFile file = tc.file;
    file.content = *mutated;
    const auto compiled = driver.compile(file);
    ASSERT_TRUE(compiled.success) << file.name << compiled.stderr_text;
    if (!executor.run(compiled.module).passed()) ++runtime_failures;
  }
  ASSERT_GT(applicable, 10);
  // The vast majority must fail at run time (a few hit the benign
  // scratch buffer and stay silent, by design).
  EXPECT_GT(runtime_failures, applicable * 7 / 10);
}

TEST(MutationTest, PlainCodeReplacementHasNoDirectivesAndRuns) {
  const auto suite = base_suite(Flavor::kOpenMP, 8);
  const auto driver = testutil::clean_driver(Flavor::kOpenMP);
  const toolchain::Executor executor;
  support::Rng rng(10);
  for (const auto& tc : suite.cases) {
    const auto mutated =
        apply_mutation(tc.file.content, tc.file.language,
                       IssueType::kReplacedWithPlainCode, {}, rng);
    ASSERT_TRUE(mutated.has_value());
    EXPECT_EQ(mutated->find("#pragma"), std::string::npos);
    frontend::SourceFile file = tc.file;
    file.content = *mutated;
    file.language = Language::kC;
    const auto compiled = driver.compile(file);
    ASSERT_TRUE(compiled.success);
    EXPECT_TRUE(executor.run(compiled.module).passed());
  }
}

TEST(MutationTest, InnerTrailingBlockRemovalKeepsBracesBalanced) {
  const auto suite = base_suite(Flavor::kOpenACC, 12);
  MutationConfig config;
  config.issue4_function_tail_share = 0.0;  // force the inner reading
  support::Rng rng(11);
  for (const auto& tc : suite.cases) {
    const auto mutated =
        apply_mutation(tc.file.content, tc.file.language,
                       IssueType::kRemovedLastBracketedSection, config, rng);
    ASSERT_TRUE(mutated.has_value());
    const auto count = [](const std::string& s, char c) {
      return std::count(s.begin(), s.end(), c);
    };
    EXPECT_EQ(count(*mutated, '{'), count(*mutated, '}')) << tc.file.name;
  }
}

TEST(MutationTest, InnerTrailingRemovalUsuallySilent) {
  // The paper's hardest category: the file still compiles and exits 0.
  const auto suite = base_suite(Flavor::kOpenACC, 16);
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const toolchain::Executor executor;
  MutationConfig config;
  config.issue4_function_tail_share = 0.0;
  support::Rng rng(12);
  int silent = 0;
  for (const auto& tc : suite.cases) {
    const auto mutated =
        apply_mutation(tc.file.content, tc.file.language,
                       IssueType::kRemovedLastBracketedSection, config, rng);
    ASSERT_TRUE(mutated.has_value());
    frontend::SourceFile file = tc.file;
    file.content = *mutated;
    const auto compiled = driver.compile(file);
    if (!compiled.success) continue;
    if (executor.run(compiled.module).passed()) ++silent;
  }
  EXPECT_GT(silent, 12);
}

TEST(MutationTest, FunctionTailRemovalIsCaughtByExecutionOnOmp) {
  const auto suite = base_suite(Flavor::kOpenMP, 16);
  const auto driver = testutil::clean_driver(Flavor::kOpenMP);
  const toolchain::Executor executor;
  MutationConfig config;
  config.issue4_function_tail_share = 1.0;  // force the function-tail arm
  support::Rng rng(13);
  int caught = 0;
  int total = 0;
  for (const auto& tc : suite.cases) {
    const auto mutated =
        apply_mutation(tc.file.content, tc.file.language,
                       IssueType::kRemovedLastBracketedSection, config, rng);
    ASSERT_TRUE(mutated.has_value());
    frontend::SourceFile file = tc.file;
    file.content = *mutated;
    ++total;
    const auto compiled = driver.compile(file);
    if (!compiled.success || !executor.run(compiled.module).passed()) {
      ++caught;
    }
  }
  EXPECT_GT(caught, total * 8 / 10);
}

TEST(MutationTest, FortranBracketEquivalentRemovesCloser) {
  const auto tc = corpus::generate_one("saxpy_offload", Flavor::kOpenACC,
                                       Language::kFortran, 21);
  support::Rng rng(14);
  const auto mutated =
      apply_mutation(tc.file.content, tc.file.language,
                     IssueType::kRemovedOpeningBracket, {}, rng);
  ASSERT_TRUE(mutated.has_value());
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  frontend::SourceFile file = tc.file;
  file.content = *mutated;
  EXPECT_FALSE(driver.compile(file).success);
}

// ---------------------------------------------------------------------------
// Suite probing
// ---------------------------------------------------------------------------

TEST(ProberTest, ExactPerIssueCounts) {
  const auto suite = base_suite(Flavor::kOpenACC, 160);
  ProbingConfig config;
  config.issue_counts = {20, 15, 10, 5, 25, 60};
  config.seed = 1;
  const auto probed = probe_suite(suite, config);
  EXPECT_EQ(probed.size(), 135u);
  for (int id = 0; id < 6; ++id) {
    EXPECT_EQ(probed.count(static_cast<IssueType>(id)),
              config.issue_counts[static_cast<std::size_t>(id)]);
  }
}

TEST(ProberTest, GroundTruthMapping) {
  const auto suite = base_suite(Flavor::kOpenACC, 40);
  ProbingConfig config;
  config.issue_counts = {5, 5, 5, 5, 5, 10};
  const auto probed = probe_suite(suite, config);
  for (const auto& pf : probed.files) {
    EXPECT_EQ(pf.ground_truth_valid(), pf.issue == IssueType::kNoIssue);
  }
}

TEST(ProberTest, DeterministicForEqualSeeds) {
  const auto suite = base_suite(Flavor::kOpenMP, 60);
  ProbingConfig config;
  config.issue_counts = {8, 8, 8, 8, 8, 16};
  config.seed = 42;
  const auto a = probe_suite(suite, config);
  const auto b = probe_suite(suite, config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.files[i].file.content, b.files[i].file.content);
    EXPECT_EQ(a.files[i].issue, b.files[i].issue);
  }
}

TEST(ProberTest, InsufficientBaseSuiteThrows) {
  const auto suite = base_suite(Flavor::kOpenACC, 10);
  ProbingConfig config;
  config.issue_counts = {10, 10, 10, 10, 10, 10};
  EXPECT_THROW(probe_suite(suite, config), std::invalid_argument);
}

TEST(ProberTest, PaperConfigsMatchPaperTotals) {
  EXPECT_EQ([] {
    std::size_t total = 0;
    for (const auto c : part_one_acc_config().issue_counts) total += c;
    return total;
  }(), 1335u);
  EXPECT_EQ([] {
    std::size_t total = 0;
    for (const auto c : part_one_omp_config().issue_counts) total += c;
    return total;
  }(), 431u);
  EXPECT_EQ([] {
    std::size_t total = 0;
    for (const auto c : part_two_acc_config().issue_counts) total += c;
    return total;
  }(), 1782u);
  EXPECT_EQ([] {
    std::size_t total = 0;
    for (const auto c : part_two_omp_config().issue_counts) total += c;
    return total;
  }(), 296u);
}

TEST(ProberTest, IssueRowLabelsMatchPaperWording) {
  EXPECT_EQ(issue_row_label(IssueType::kRemovedOpeningBracket,
                            Flavor::kOpenACC),
            "Removed an opening bracket");
  EXPECT_EQ(issue_row_label(IssueType::kReplacedWithPlainCode,
                            Flavor::kOpenMP),
            "Replaced file with randomly-generated non-OpenMP code");
  EXPECT_EQ(issue_row_label(IssueType::kRemovedAllocOrSwappedDirective,
                            Flavor::kOpenACC),
            "Removed ACC memory allocation / swapped ACC directive");
}

TEST(ProberTest, IssueNamesAreStable) {
  for (int id = 0; id <= 5; ++id) {
    EXPECT_STRNE(issue_name(static_cast<IssueType>(id)), "?");
  }
}

}  // namespace
}  // namespace llm4vv::probing
