// The persistent artifact store and its building blocks: the JSONL
// object-line reader, the module/diagnostic codecs, and the store's
// header/fingerprint, corruption-tolerance, compaction, and concurrency
// contracts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <fstream>
#include <thread>

#include "cache/artifact_store.hpp"
#include "cache/compile_cache.hpp"
#include "cache/module_codec.hpp"
#include "corpus/generator.hpp"
#include "support/jsonl.hpp"
#include "tests/test_util.hpp"
#include "toolchain/executor.hpp"

namespace llm4vv::cache {
namespace {

using support::JsonValue;
using support::parse_json_object_line;

using testutil::TempFile;

ArtifactStoreConfig store_config(const std::string& path) {
  ArtifactStoreConfig config;
  config.path = path;
  config.fingerprint = StoreFingerprint{"corpus-a", "model-x", 7};
  return config;
}

// ---------------------------------------------------------------------------
// JSONL reader
// ---------------------------------------------------------------------------

TEST(JsonlReaderTest, ParsesScalarsOfEveryKind) {
  const auto object = parse_json_object_line(
      R"({"s":"hi","i":42,"d":-1.5e3,"t":true,"f":false,"n":null})");
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->at("s").string, "hi");
  EXPECT_DOUBLE_EQ(object->at("i").number, 42.0);
  EXPECT_DOUBLE_EQ(object->at("d").number, -1500.0);
  EXPECT_TRUE(object->at("t").boolean);
  EXPECT_FALSE(object->at("f").boolean);
  EXPECT_EQ(object->at("n").kind, JsonValue::Kind::kNull);
}

TEST(JsonlReaderTest, RoundTripsTheWriterIncludingEscapes) {
  support::JsonObject writer;
  const std::string nasty = "line1\nline2\t\"quoted\" back\\slash \x01 end";
  writer.field("text", nasty).field("count", std::int64_t{-3});
  const auto object = parse_json_object_line(writer.str());
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->at("text").string, nasty);
  EXPECT_DOUBLE_EQ(object->at("count").number, -3.0);
}

TEST(JsonlReaderTest, FormatDoubleRoundtripIsBitExact) {
  // The %.17g rule the judge codec persists latencies with: strtod of the
  // rendering must reproduce the double bit-for-bit.
  for (const double value :
       {0.1234567890123456789, 1e-300, 13.55 * 3, -0.0, 1.0 / 3.0}) {
    const std::string text = support::format_double_roundtrip(value);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), value) << text;
  }
  EXPECT_EQ(support::format_double_roundtrip(
                std::numeric_limits<double>::quiet_NaN()),
            "null");
}

TEST(JsonlReaderTest, RejectsTruncatedAndMalformedLines) {
  EXPECT_FALSE(parse_json_object_line(R"({"a":"unterminated)").has_value());
  EXPECT_FALSE(parse_json_object_line(R"({"a":1)").has_value());
  EXPECT_FALSE(parse_json_object_line(R"({"a":1} trailing)").has_value());
  EXPECT_FALSE(parse_json_object_line("not json at all").has_value());
  EXPECT_FALSE(parse_json_object_line(R"({"a":[1,2]})").has_value());
  EXPECT_FALSE(parse_json_object_line("").has_value());
  EXPECT_TRUE(parse_json_object_line("{}").has_value());
}

TEST(JsonlReaderTest, DecodesUnicodeEscapes) {
  const auto object =
      parse_json_object_line("{\"c\":\"\\u0001\\u00e9\"}");
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->at("c").string, "\x01\xc3\xa9");  // U+0001, U+00E9
}

// ---------------------------------------------------------------------------
// Module codec
// ---------------------------------------------------------------------------

/// Compile a generated file to get a real, non-trivial module.
std::shared_ptr<const vm::Module> sample_module() {
  const auto file =
      corpus::generate_one("saxpy_offload", frontend::Flavor::kOpenACC,
                           frontend::Language::kC, 3)
          .file;
  const auto driver = testutil::clean_driver(frontend::Flavor::kOpenACC);
  const auto compiled = driver.compile(file);
  EXPECT_TRUE(compiled.success);
  return compiled.module;
}

TEST(ModuleCodecTest, RoundTripsARealModule) {
  const auto module = sample_module();
  ASSERT_NE(module, nullptr);
  const auto decoded = decode_module(encode_module(*module));
  ASSERT_TRUE(decoded.has_value());

  ASSERT_EQ(decoded->chunks.size(), module->chunks.size());
  EXPECT_EQ(decoded->global_slot_count, module->global_slot_count);
  EXPECT_EQ(decoded->main_chunk, module->main_chunk);
  EXPECT_EQ(decoded->init_chunk, module->init_chunk);
  EXPECT_EQ(decoded->strings, module->strings);
  ASSERT_EQ(decoded->consts.size(), module->consts.size());
  for (std::size_t i = 0; i < module->consts.size(); ++i) {
    EXPECT_EQ(decoded->consts[i].tag, module->consts[i].tag) << i;
    EXPECT_EQ(decoded->consts[i].ptr, module->consts[i].ptr) << i;
  }
  // Disassembly covers opcodes, operands, and line info in one comparison.
  for (std::size_t c = 0; c < module->chunks.size(); ++c) {
    EXPECT_EQ(vm::disassemble(*decoded, decoded->chunks[c]),
              vm::disassemble(*module, module->chunks[c]))
        << c;
  }
  ASSERT_EQ(decoded->regions.size(), module->regions.size());
  for (std::size_t r = 0; r < module->regions.size(); ++r) {
    EXPECT_EQ(decoded->regions[r].directive, module->regions[r].directive);
    EXPECT_EQ(decoded->regions[r].enter_ops.size(),
              module->regions[r].enter_ops.size());
    EXPECT_EQ(decoded->regions[r].exit_ops.size(),
              module->regions[r].exit_ops.size());
  }
}

TEST(ModuleCodecTest, DecodedModuleExecutesIdentically) {
  const auto module = sample_module();
  ASSERT_NE(module, nullptr);
  const auto decoded = decode_module(encode_module(*module));
  ASSERT_TRUE(decoded.has_value());
  const toolchain::Executor executor;
  const auto original = executor.run(module);
  const auto replayed = executor.run(
      std::make_shared<const vm::Module>(std::move(*decoded)));
  EXPECT_EQ(replayed.ran, original.ran);
  EXPECT_EQ(replayed.return_code, original.return_code);
  EXPECT_EQ(replayed.stdout_text, original.stdout_text);
  EXPECT_EQ(replayed.stderr_text, original.stderr_text);
  EXPECT_EQ(replayed.steps, original.steps);
}

TEST(ModuleCodecTest, RejectsCorruptInput) {
  const auto module = sample_module();
  ASSERT_NE(module, nullptr);
  const std::string good = encode_module(*module);
  EXPECT_FALSE(decode_module("").has_value());
  EXPECT_FALSE(decode_module("BOGUS 1 0").has_value());
  EXPECT_FALSE(decode_module(good.substr(0, good.size() / 2)).has_value());
  // Absurd count: the bounded reader refuses instead of allocating.
  EXPECT_FALSE(
      decode_module("LLM4VV-MOD 1 0 -1 -1 99999999999 0 0 0").has_value());
}

TEST(ModuleCodecTest, RejectsStructurallyInvalidModules) {
  // Token-valid but structurally corrupt records must be rejected, not
  // handed to the interpreter to crash on. Out-of-range chunk entry:
  EXPECT_FALSE(
      decode_module("LLM4VV-MOD 1 0 9 -1 1 0 0 0 - 0 0 0").has_value());
  // Negative slot count (frame resize to size_t(-3)):
  EXPECT_FALSE(
      decode_module("LLM4VV-MOD 1 0 0 -1 1 0 0 0 - 0 -3 0").has_value());
  // Negative global slot count:
  EXPECT_FALSE(
      decode_module("LLM4VV-MOD 1 -2 -1 -1 0 0 0 0").has_value());
  // A flipped chunk index in an otherwise-valid encoding: corrupt the
  // real module's main_chunk token (field 3 of the header line).
  const auto module = sample_module();
  ASSERT_NE(module, nullptr);
  auto corrupted = *module;
  corrupted.main_chunk =
      static_cast<std::int32_t>(corrupted.chunks.size()) + 5;
  EXPECT_FALSE(decode_module(encode_module(corrupted)).has_value());
}

TEST(ModuleCodecTest, DiagnosticsRoundTrip) {
  std::vector<frontend::Diagnostic> diags;
  diags.push_back(frontend::Diagnostic{frontend::Severity::kError,
                                       frontend::DiagCode::kBadClause, 12, 3,
                                       "bad clause 'gangs' on loop"});
  diags.push_back(frontend::Diagnostic{frontend::Severity::kWarning,
                                       frontend::DiagCode::kVersionGate, 1, 1,
                                       ""});
  const auto decoded = decode_diagnostics(encode_diagnostics(diags));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].severity, frontend::Severity::kError);
  EXPECT_EQ((*decoded)[0].code, frontend::DiagCode::kBadClause);
  EXPECT_EQ((*decoded)[0].line, 12);
  EXPECT_EQ((*decoded)[0].column, 3);
  EXPECT_EQ((*decoded)[0].message, "bad clause 'gangs' on loop");
  EXPECT_EQ((*decoded)[1].message, "");
  EXPECT_FALSE(decode_diagnostics("garbage").has_value());
}

// ---------------------------------------------------------------------------
// ArtifactStore
// ---------------------------------------------------------------------------

TEST(ArtifactStoreTest, PutGetAndCheckMismatch) {
  ArtifactStore store(store_config(""));  // in-memory
  store.put("judge", 1, 100, {{"v", "a"}});
  const auto hit = store.get("judge", 1, 100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at("v"), "a");
  // Wrong check hash: a detected collision is a miss, never a wrong record.
  EXPECT_FALSE(store.get("judge", 1, 101).has_value());
  // Wrong namespace: a miss too.
  EXPECT_FALSE(store.get("compile", 1, 100).has_value());
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().gets, 3u);
}

TEST(ArtifactStoreTest, SaveThenLoadRoundTripsRecords) {
  TempFile file("roundtrip");
  {
    ArtifactStore store(store_config(file.path()));
    EXPECT_FALSE(store.load_report().attempted);  // fresh file
    store.put("judge", 42, 4242,
              {{"prompt", "multi\nline \"text\""}, {"verdict", "1"}});
    store.put("compile", 43, 4343, {{"rc", "0"}});
    ASSERT_TRUE(store.save()) << store.last_error();
  }
  ArtifactStore reloaded(store_config(file.path()));
  EXPECT_TRUE(reloaded.load_report().attempted);
  EXPECT_FALSE(reloaded.load_report().cold_start);
  EXPECT_EQ(reloaded.load_report().loaded, 2u);
  EXPECT_EQ(reloaded.load_report().corrupt_lines, 0u);
  const auto hit = reloaded.get("judge", 42, 4242);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->at("prompt"), "multi\nline \"text\"");
  EXPECT_EQ(hit->at("verdict"), "1");
  EXPECT_TRUE(reloaded.get("compile", 43, 4343).has_value());
}

TEST(ArtifactStoreTest, FingerprintMismatchColdStarts) {
  TempFile file("fingerprint");
  {
    ArtifactStore store(store_config(file.path()));
    store.put("judge", 1, 1, {{"v", "stale"}});
    ASSERT_TRUE(store.save());
  }
  auto changed = store_config(file.path());
  changed.fingerprint.model = "model-y";  // different model: records stale
  ArtifactStore reloaded(changed);
  EXPECT_TRUE(reloaded.load_report().cold_start);
  EXPECT_NE(reloaded.load_report().cold_start_reason.find("fingerprint"),
            std::string::npos);
  EXPECT_EQ(reloaded.size(), 0u);
  EXPECT_FALSE(reloaded.get("judge", 1, 1).has_value());
}

TEST(ArtifactStoreTest, TruncatedTailAndGarbageLinesAreSkipped) {
  TempFile file("corrupt");
  {
    ArtifactStore store(store_config(file.path()));
    store.put("judge", 1, 10, {{"v", "a"}});
    store.put("judge", 2, 20, {{"v", "b"}});
    ASSERT_TRUE(store.save());
  }
  {
    // Simulate a crash mid-append: garbage and a truncated record line.
    std::ofstream out(file.path(), std::ios::app);
    out << "this is not json\n";
    out << R"({"ns":"judge","key":"0000000000000003","check":"0000)";
    // no closing quote/brace/newline: truncated tail
  }
  ArtifactStore reloaded(store_config(file.path()));
  EXPECT_FALSE(reloaded.load_report().cold_start);
  EXPECT_EQ(reloaded.load_report().loaded, 2u);
  EXPECT_EQ(reloaded.load_report().corrupt_lines, 2u);
  EXPECT_TRUE(reloaded.get("judge", 1, 10).has_value());
  EXPECT_TRUE(reloaded.get("judge", 2, 20).has_value());
}

TEST(ArtifactStoreTest, CrlfLineEndingsStillLoad) {
  TempFile file("crlf");
  {
    ArtifactStore store(store_config(file.path()));
    store.put("judge", 1, 10, {{"v", "a"}});
    ASSERT_TRUE(store.save());
  }
  {
    // Simulate a Windows checkout / editor converting line endings.
    std::ifstream in(file.path());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    in.close();
    std::string crlf;
    for (const char c : content) {
      if (c == '\n') crlf += "\r\n";
      else crlf.push_back(c);
    }
    std::ofstream out(file.path(), std::ios::trunc | std::ios::binary);
    out << crlf;
  }
  ArtifactStore reloaded(store_config(file.path()));
  EXPECT_FALSE(reloaded.load_report().cold_start);
  EXPECT_EQ(reloaded.load_report().loaded, 1u);
  EXPECT_TRUE(reloaded.get("judge", 1, 10).has_value());
}

TEST(ArtifactStoreTest, UnparseableHeaderColdStarts) {
  TempFile file("badheader");
  {
    std::ofstream out(file.path());
    out << "garbage header\n";
    out << R"({"ns":"judge","key":"01","check":"01","f_v":"x"})" << "\n";
  }
  ArtifactStore store(store_config(file.path()));
  EXPECT_TRUE(store.load_report().cold_start);
  EXPECT_EQ(store.size(), 0u);
}

TEST(ArtifactStoreTest, BoundedSizeCompactsOldestFirst) {
  auto config = store_config("");
  config.max_records = 3;
  ArtifactStore store(config);
  for (std::uint64_t k = 1; k <= 5; ++k) {
    store.put("judge", k, k * 10, {{"v", std::to_string(k)}});
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.stats().compactions, 2u);
  EXPECT_FALSE(store.get("judge", 1, 10).has_value());  // oldest gone
  EXPECT_FALSE(store.get("judge", 2, 20).has_value());
  EXPECT_TRUE(store.get("judge", 3, 30).has_value());
  EXPECT_TRUE(store.get("judge", 5, 50).has_value());
}

TEST(ArtifactStoreTest, OverwriteKeepsAgeAndUpdatesFields) {
  auto config = store_config("");
  config.max_records = 2;
  ArtifactStore store(config);
  store.put("judge", 1, 10, {{"v", "old"}});
  store.put("judge", 2, 20, {{"v", "b"}});
  store.put("judge", 1, 10, {{"v", "new"}});  // overwrite, no growth
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.get("judge", 1, 10)->at("v"), "new");
  store.put("judge", 3, 30, {{"v", "c"}});  // evicts key 1 (still oldest)
  EXPECT_FALSE(store.get("judge", 1, 10).has_value());
  EXPECT_TRUE(store.get("judge", 2, 20).has_value());
}

TEST(ArtifactStoreTest, ForEachVisitsNamespaceInInsertionOrder) {
  ArtifactStore store(store_config(""));
  store.put("judge", 3, 1, {});
  store.put("compile", 9, 1, {});
  store.put("judge", 1, 1, {});
  std::vector<std::uint64_t> keys;
  store.for_each("judge",
                 [&keys](std::uint64_t key, std::uint64_t, const auto&) {
                   keys.push_back(key);
                 });
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], 3u);
  EXPECT_EQ(keys[1], 1u);
}

TEST(ArtifactStoreTest, ConcurrentReadersAndWritersStaySane) {
  TempFile file("concurrent");
  ArtifactStore store(store_config(file.path()));
  std::atomic<bool> stop{false};
  std::atomic<int> bad_reads{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&store, &stop, &bad_reads] {
      while (!stop.load()) {
        for (std::uint64_t k = 0; k < 64; ++k) {
          const auto hit = store.get("judge", k, k);
          if (hit.has_value() && hit->at("v") != std::to_string(k)) {
            bad_reads.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::uint64_t round = 0; round < 4; ++round) {
    for (std::uint64_t k = 0; k < 64; ++k) {
      store.put("judge", k, k, {{"v", std::to_string(k)}});
    }
    EXPECT_TRUE(store.save());
  }
  stop.store(true);
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bad_reads.load(), 0);
  ArtifactStore reloaded(store_config(file.path()));
  EXPECT_EQ(reloaded.size(), 64u);
}

// ---------------------------------------------------------------------------
// Compile-result codec (store payload for the compile cache)
// ---------------------------------------------------------------------------

TEST(CompileRecordTest, EncodeDecodeRoundTripsSuccessAndFailure) {
  const auto driver = testutil::clean_driver(frontend::Flavor::kOpenACC);
  const auto good =
      corpus::generate_one("saxpy_offload", frontend::Flavor::kOpenACC,
                           frontend::Language::kC, 3)
          .file;
  auto bad = good;
  bad.content = "int main( { return 0; }\n";  // parse error

  const frontend::SourceFile* files[] = {&good, &bad};
  for (const frontend::SourceFile* file : files) {
    const auto compiled = driver.compile(*file);
    const auto decoded = decode_compile_result(encode_compile_result(compiled));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->success, compiled.success);
    EXPECT_EQ(decoded->return_code, compiled.return_code);
    EXPECT_EQ(decoded->stderr_text, compiled.stderr_text);
    EXPECT_EQ(decoded->stdout_text, compiled.stdout_text);
    ASSERT_EQ(decoded->diagnostics.size(), compiled.diagnostics.size());
    for (std::size_t i = 0; i < compiled.diagnostics.size(); ++i) {
      EXPECT_EQ(decoded->diagnostics[i].code, compiled.diagnostics[i].code);
      EXPECT_EQ(decoded->diagnostics[i].message,
                compiled.diagnostics[i].message);
    }
    EXPECT_EQ(decoded->module != nullptr, compiled.module != nullptr);
  }
}

TEST(CompileRecordTest, SuccessWithoutModuleIsRejected) {
  toolchain::CompileResult result;
  result.success = true;  // but no module: cannot skip the front-end
  auto fields = encode_compile_result(result);
  EXPECT_FALSE(decode_compile_result(fields).has_value());
}

}  // namespace
}  // namespace llm4vv::cache
