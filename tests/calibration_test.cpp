// Calibration tests: the reproduction's headline guarantee. Each test runs
// one of the paper's experiments end to end (generation -> probing ->
// toolchain -> simulated judge -> metrics) under the default seeds and pins
// the measured numbers to the paper's tables within tolerance bands:
// per-issue rows +/- 12 percentage points (judge draws are stochastic and
// some rows have n as small as 20), overall accuracy +/- 4 points, and
// qualitative shape criteria exactly (see DESIGN.md §4).
#include <gtest/gtest.h>

#include <cmath>

#include "core/llm4vv.hpp"

namespace llm4vv::core {
namespace {

using frontend::Flavor;

constexpr double kRowTolerance = 0.12;
constexpr double kOverallTolerance = 0.04;

/// Per-row tolerance: the judge verdicts are Bernoulli draws, so small rows
/// (the OpenMP tables go down to n = 20) carry real sampling noise even
/// when the underlying rate matches the paper exactly. The band is the
/// fixed reproduction tolerance widened to a 99.5% binomial interval.
double row_tolerance(double paper_accuracy, std::size_t n) {
  if (n == 0) return kRowTolerance;
  const double p = std::min(std::max(paper_accuracy, 0.05), 0.95);
  const double sigma = std::sqrt(p * (1.0 - p) / static_cast<double>(n));
  return std::max(kRowTolerance, 2.81 * sigma);
}

void expect_rows_match(const metrics::EvalReport& measured,
                       const PaperIssueTable& paper, const char* label) {
  for (std::size_t id = 0; id < 6; ++id) {
    EXPECT_EQ(measured.per_issue[id].count,
              static_cast<std::size_t>(paper[id].count))
        << label << " issue " << id << " count";
    EXPECT_NEAR(measured.per_issue[id].accuracy(), paper[id].accuracy,
                row_tolerance(paper[id].accuracy,
                              measured.per_issue[id].count))
        << label << " issue " << id;
  }
}

// The Part One / Part Two outcomes are shared across tests in this file to
// keep the suite fast; each fixture runs its experiment once.
const PartOneOutcome& part_one(Flavor flavor) {
  static const PartOneOutcome acc = run_part_one(Flavor::kOpenACC);
  static const PartOneOutcome omp = run_part_one(Flavor::kOpenMP);
  return flavor == Flavor::kOpenACC ? acc : omp;
}

const PartTwoOutcome& part_two(Flavor flavor) {
  static const PartTwoOutcome acc = run_part_two(Flavor::kOpenACC);
  static const PartTwoOutcome omp = run_part_two(Flavor::kOpenMP);
  return flavor == Flavor::kOpenACC ? acc : omp;
}

// ---------------------------------------------------------------------------
// Tables I-III: the non-agent judge
// ---------------------------------------------------------------------------

TEST(CalibrationTableI, PerIssueAccuracyWithinBand) {
  expect_rows_match(part_one(Flavor::kOpenACC).report, table1_llmj_acc(),
                    "Table I");
}

TEST(CalibrationTableII, PerIssueAccuracyWithinBand) {
  expect_rows_match(part_one(Flavor::kOpenMP).report, table2_llmj_omp(),
                    "Table II");
}

TEST(CalibrationTableIII, OverallAccuracyAndBias) {
  const auto& acc = part_one(Flavor::kOpenACC).report;
  const auto& omp = part_one(Flavor::kOpenMP).report;
  EXPECT_NEAR(acc.overall_accuracy,
              table3_overall(Flavor::kOpenACC).overall_accuracy,
              kOverallTolerance);
  EXPECT_NEAR(omp.overall_accuracy,
              table3_overall(Flavor::kOpenMP).overall_accuracy,
              kOverallTolerance);
  // Bias shape: strongly permissive on OpenACC, near-neutral on OpenMP.
  EXPECT_GT(acc.bias, 0.5);
  EXPECT_NEAR(omp.bias, 0.0, 0.15);
}

TEST(CalibrationPartOne, OmpBlindSpotOnPlainCode) {
  // Table II's famous row: the direct judge almost never notices that a
  // file contains no OpenMP at all (4%), while it usually notices missing
  // OpenACC (80%).
  const auto& omp = part_one(Flavor::kOpenMP).report;
  const auto& acc = part_one(Flavor::kOpenACC).report;
  EXPECT_LT(omp.per_issue[3].accuracy(), 0.15);
  EXPECT_GT(acc.per_issue[3].accuracy(), 0.65);
}

// ---------------------------------------------------------------------------
// Tables IV-VI: the validation pipeline
// ---------------------------------------------------------------------------

TEST(CalibrationTableIV, PerIssueAccuracyWithinBand) {
  const auto& outcome = part_two(Flavor::kOpenACC);
  expect_rows_match(outcome.pipeline1_report, table4_pipeline_acc(1),
                    "Table IV P1");
  expect_rows_match(outcome.pipeline2_report, table4_pipeline_acc(2),
                    "Table IV P2");
}

TEST(CalibrationTableV, PerIssueAccuracyWithinBand) {
  const auto& outcome = part_two(Flavor::kOpenMP);
  expect_rows_match(outcome.pipeline1_report, table5_pipeline_omp(1),
                    "Table V P1");
  expect_rows_match(outcome.pipeline2_report, table5_pipeline_omp(2),
                    "Table V P2");
}

TEST(CalibrationTableVI, OverallPipelineAccuracy) {
  for (const auto flavor : {Flavor::kOpenACC, Flavor::kOpenMP}) {
    const auto& outcome = part_two(flavor);
    EXPECT_NEAR(outcome.pipeline1_report.overall_accuracy,
                table6_overall(flavor, 1).overall_accuracy,
                kOverallTolerance)
        << frontend::flavor_name(flavor);
    EXPECT_NEAR(outcome.pipeline2_report.overall_accuracy,
                table6_overall(flavor, 2).overall_accuracy,
                kOverallTolerance)
        << frontend::flavor_name(flavor);
    // Pipelines err toward restrictiveness (negative bias) in the paper.
    EXPECT_LT(outcome.pipeline1_report.bias, 0.05);
    EXPECT_LT(outcome.pipeline2_report.bias, 0.05);
  }
}

TEST(CalibrationPipeline, CompileCatchableRowsSaturate) {
  // Issues 1 and 2 (and the garbage-replacement row for OpenMP's
  // clang persona too) are caught mechanically at 100% (Table IV/V).
  for (const auto flavor : {Flavor::kOpenACC, Flavor::kOpenMP}) {
    const auto& p1 = part_two(flavor).pipeline1_report;
    EXPECT_DOUBLE_EQ(p1.per_issue[1].accuracy(), 1.0)
        << frontend::flavor_name(flavor);
    EXPECT_DOUBLE_EQ(p1.per_issue[2].accuracy(), 1.0)
        << frontend::flavor_name(flavor);
  }
}

TEST(CalibrationPipeline, TrailingBlockRemovalStaysHardOnAcc) {
  // Table IV's standout row: 22-30% on issue 4 for OpenACC, while OpenMP's
  // pipelines catch it at ~92% (Table V).
  const auto& acc = part_two(Flavor::kOpenACC);
  const auto& omp = part_two(Flavor::kOpenMP);
  EXPECT_LT(acc.pipeline1_report.per_issue[4].accuracy(), 0.45);
  EXPECT_GT(omp.pipeline1_report.per_issue[4].accuracy(), 0.75);
}

TEST(CalibrationPipeline, OmpPipelineBeatsAccPipeline) {
  // "Both pipelines were significantly more accurate for OpenMP than for
  // OpenACC."
  EXPECT_GT(part_two(Flavor::kOpenMP).pipeline1_report.overall_accuracy,
            part_two(Flavor::kOpenACC).pipeline1_report.overall_accuracy +
                0.05);
}

// ---------------------------------------------------------------------------
// Tables VII-IX: the agent-based judges
// ---------------------------------------------------------------------------

TEST(CalibrationTableVII, PerIssueAccuracyWithinBand) {
  const auto& outcome = part_two(Flavor::kOpenACC);
  expect_rows_match(outcome.llmj1_report, table7_agent_acc(1),
                    "Table VII LLMJ1");
  expect_rows_match(outcome.llmj2_report, table7_agent_acc(2),
                    "Table VII LLMJ2");
}

TEST(CalibrationTableVIII, PerIssueAccuracyWithinBand) {
  const auto& outcome = part_two(Flavor::kOpenMP);
  expect_rows_match(outcome.llmj1_report, table8_agent_omp(1),
                    "Table VIII LLMJ1");
  expect_rows_match(outcome.llmj2_report, table8_agent_omp(2),
                    "Table VIII LLMJ2");
}

TEST(CalibrationTableIX, OverallAgentAccuracyAndBias) {
  for (const auto flavor : {Flavor::kOpenACC, Flavor::kOpenMP}) {
    const auto& outcome = part_two(flavor);
    EXPECT_NEAR(outcome.llmj1_report.overall_accuracy,
                table9_overall(flavor, 1).overall_accuracy,
                kOverallTolerance)
        << frontend::flavor_name(flavor);
    EXPECT_NEAR(outcome.llmj2_report.overall_accuracy,
                table9_overall(flavor, 2).overall_accuracy,
                kOverallTolerance)
        << frontend::flavor_name(flavor);
    // "In all cases, the agent-based LLMs exhibited a tendency towards
    // passing invalid files" — positive bias.
    EXPECT_GT(outcome.llmj1_report.bias, 0.0);
    EXPECT_GT(outcome.llmj2_report.bias, 0.0);
  }
}

// ---------------------------------------------------------------------------
// The paper's headline conclusions
// ---------------------------------------------------------------------------

TEST(CalibrationHeadline, AgentPromptingBeatsDirectPrompting) {
  // "utilizing an agent-based prompting approach ... drastically increased
  // the quality of deepseek-coder-33B-instruct evaluation".
  for (const auto flavor : {Flavor::kOpenACC, Flavor::kOpenMP}) {
    const double direct = part_one(flavor).report.overall_accuracy;
    const double agent1 = part_two(flavor).llmj1_report.overall_accuracy;
    const double agent2 = part_two(flavor).llmj2_report.overall_accuracy;
    EXPECT_GT(agent1, direct + 0.10) << frontend::flavor_name(flavor);
    EXPECT_GT(agent2, direct + 0.10) << frontend::flavor_name(flavor);
  }
}

TEST(CalibrationHeadline, PipelineIsTheBestConfiguration) {
  for (const auto flavor : {Flavor::kOpenACC, Flavor::kOpenMP}) {
    const auto& outcome = part_two(flavor);
    EXPECT_GE(outcome.pipeline1_report.overall_accuracy,
              outcome.llmj1_report.overall_accuracy - 0.01)
        << frontend::flavor_name(flavor);
  }
}

TEST(CalibrationHeadline, DeterministicAcrossRuns) {
  // The experiments are seeded: a second run yields identical reports.
  const auto again = run_part_one(Flavor::kOpenACC);
  EXPECT_EQ(again.report.total_mistakes,
            part_one(Flavor::kOpenACC).report.total_mistakes);
  EXPECT_DOUBLE_EQ(again.report.overall_accuracy,
                   part_one(Flavor::kOpenACC).report.overall_accuracy);
}

TEST(CalibrationHeadline, DifferentSeedsStayWithinBands) {
  // Robustness: a different corpus seed still lands in the same regime for
  // the coarse aggregates (the reproduction is not knife-edge tuned).
  ExperimentOptions options;
  options.corpus_seed = 0xFEEDFACEULL;
  options.probe_seed_offset = 3;
  const auto outcome = run_part_one(Flavor::kOpenACC, options);
  EXPECT_NEAR(outcome.report.overall_accuracy,
              table3_overall(Flavor::kOpenACC).overall_accuracy, 0.06);
}

}  // namespace
}  // namespace llm4vv::core
