#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "corpus/templates.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::corpus {
namespace {

using frontend::Flavor;
using frontend::Language;

// ---------------------------------------------------------------------------
// The central validity property: every generated test compiles and passes.
// ---------------------------------------------------------------------------

struct ValidityCase {
  std::string template_name;
  Flavor flavor;
  Language language;
};

class TemplateValidityTest : public ::testing::TestWithParam<ValidityCase> {};

TEST_P(TemplateValidityTest, CompilesAndExitsZero) {
  const auto& param = GetParam();
  const auto driver = testutil::clean_driver(param.flavor);
  const toolchain::Executor executor;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto tc = generate_one(param.template_name, param.flavor,
                                 param.language, seed);
    const auto compiled = driver.compile(tc.file);
    ASSERT_TRUE(compiled.success)
        << tc.file.name << " seed " << seed << "\n" << compiled.stderr_text;
    const auto ran = executor.run(compiled.module);
    EXPECT_TRUE(ran.passed())
        << tc.file.name << " seed " << seed << " rc=" << ran.return_code
        << "\nstderr: " << ran.stderr_text << "\nstdout: " << ran.stdout_text;
    EXPECT_NE(ran.stdout_text.find("PASSED"), std::string::npos)
        << tc.file.name;
  }
}

std::vector<ValidityCase> validity_cases() {
  std::vector<ValidityCase> cases;
  for (const auto& tpl : test_templates()) {
    if (tpl.supports_acc) {
      cases.push_back({tpl.name, Flavor::kOpenACC, Language::kC});
      cases.push_back({tpl.name, Flavor::kOpenACC, Language::kCpp});
      if (tpl.supports_fortran) {
        cases.push_back({tpl.name, Flavor::kOpenACC, Language::kFortran});
      }
    }
    if (tpl.supports_omp) {
      cases.push_back({tpl.name, Flavor::kOpenMP, Language::kC});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplatesAllLanguages, TemplateValidityTest,
    ::testing::ValuesIn(validity_cases()),
    // Not `info`: INSTANTIATE_TEST_SUITE_P expands the lambda inside a
    // generated function whose own parameter is named `info` (-Wshadow).
    [](const ::testing::TestParamInfo<ValidityCase>& param_info) {
      std::string name = param_info.param.template_name;
      name += param_info.param.flavor == Flavor::kOpenACC ? "_acc" : "_omp";
      name += frontend::language_extension(param_info.param.language);
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Generator behaviour
// ---------------------------------------------------------------------------

TEST(GeneratorTest, DeterministicForEqualSeeds) {
  GeneratorConfig config;
  config.flavor = Flavor::kOpenACC;
  config.count = 40;
  config.seed = 77;
  const auto a = generate_suite(config);
  const auto b = generate_suite(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.cases[i].file.content, b.cases[i].file.content);
    EXPECT_EQ(a.cases[i].file.name, b.cases[i].file.name);
  }
}

TEST(GeneratorTest, DifferentSeedsGiveDifferentSuites) {
  GeneratorConfig config;
  config.flavor = Flavor::kOpenACC;
  config.count = 10;
  config.seed = 1;
  const auto a = generate_suite(config);
  config.seed = 2;
  const auto b = generate_suite(config);
  int different = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.cases[i].file.content != b.cases[i].file.content) ++different;
  }
  EXPECT_GT(different, 0);
}

TEST(GeneratorTest, RequestedCountProduced) {
  GeneratorConfig config;
  config.flavor = Flavor::kOpenMP;
  config.count = 123;
  const auto suite = generate_suite(config);
  EXPECT_EQ(suite.size(), 123u);
  EXPECT_EQ(suite.flavor, Flavor::kOpenMP);
}

TEST(GeneratorTest, LanguageSharesRoughlyHonoured) {
  GeneratorConfig config;
  config.flavor = Flavor::kOpenACC;
  config.count = 400;
  config.cpp_share = 0.5;
  config.fortran_share = 0.1;
  const auto suite = generate_suite(config);
  std::size_t cpp = 0, fortran = 0;
  for (const auto& tc : suite.cases) {
    if (tc.file.language == Language::kCpp) ++cpp;
    if (tc.file.language == Language::kFortran) ++fortran;
  }
  EXPECT_NEAR(static_cast<double>(cpp) / 400.0, 0.5, 0.12);
  EXPECT_GT(fortran, 0u);
}

TEST(GeneratorTest, FileNamesCarryFlavorTemplateAndExtension) {
  GeneratorConfig config;
  config.flavor = Flavor::kOpenMP;
  config.count = 5;
  const auto suite = generate_suite(config);
  for (const auto& tc : suite.cases) {
    EXPECT_EQ(tc.file.name.substr(0, 4), "omp_");
    EXPECT_NE(tc.file.name.find(tc.template_name), std::string::npos);
  }
}

TEST(GeneratorTest, VersionCapFiltersTemplates) {
  // At OpenMP 1.0 only the host templates remain.
  const auto names_10 = template_names(Flavor::kOpenMP, 10);
  const auto names_45 = template_names(Flavor::kOpenMP, 45);
  EXPECT_LT(names_10.size(), names_45.size());
  for (const auto& name : names_10) {
    EXPECT_TRUE(name == "atomic_update" || name == "host_parallel")
        << name;
  }
}

TEST(GeneratorTest, UnknownTemplateThrows) {
  EXPECT_THROW(
      generate_one("no_such_template", Flavor::kOpenACC, Language::kC, 1),
      std::invalid_argument);
}

TEST(GeneratorTest, OmpFilesUseTestFunctionStructure) {
  // The SOLLVE-style structure matters to issue-4 probing mechanics.
  const auto tc = generate_one("saxpy_offload", Flavor::kOpenMP,
                               Language::kC, 9);
  EXPECT_NE(tc.file.content.find("int test_"), std::string::npos);
  const auto main_at = tc.file.content.find("int main()");
  const auto test_at = tc.file.content.find("int test_");
  EXPECT_LT(test_at, main_at);
}

TEST(GeneratorTest, AccFilesAreSingleMain) {
  const auto tc = generate_one("saxpy_offload", Flavor::kOpenACC,
                               Language::kC, 9);
  EXPECT_EQ(tc.file.content.find("int test_"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Plain (non-directive) code generator — the issue-3 substrate
// ---------------------------------------------------------------------------

class PlainCodeTest : public ::testing::TestWithParam<int> {};

TEST_P(PlainCodeTest, CompilesRunsCleanAndHasNoDirectives) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::string code = generate_plain_code(rng);
  EXPECT_EQ(code.find("#pragma"), std::string::npos);
  EXPECT_EQ(code.find("!$"), std::string::npos);
  const auto result = testutil::run_source(code);
  EXPECT_EQ(result.return_code, 0) << code << result.stderr_text;
  EXPECT_FALSE(result.stdout_text.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlainCodeTest, ::testing::Range(1, 25));

}  // namespace
}  // namespace llm4vv::corpus
