// Unit tests of the obs/ telemetry subsystem: sharded registry cells
// (exact totals under concurrent writers), probe registration, the
// Prometheus text renderer, the per-thread-ring tracer with its bounded
// drop-oldest storage, ObsSpan RAII semantics, and both exporters (Chrome
// trace-event JSON and the JSONL span log).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "support/jsonl.hpp"
#include "support/strings.hpp"

namespace llm4vv::obs {
namespace {

double sample(const MetricsSnapshot& snapshot, const std::string& name,
              const std::string& label = "") {
  const MetricSample* found = find_sample(snapshot, name, label);
  return found != nullptr ? found->value : -1.0;
}

TEST(ObsRegistryTest, CounterExactUnderConcurrentWriters) {
  Registry registry;
  Counter counter = registry.counter("test.hits");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  counter.inc(5);
  EXPECT_EQ(sample(registry.snapshot(), "test.hits"),
            static_cast<double>(kThreads * kPerThread + 5));
}

TEST(ObsRegistryTest, CounterHandleIsGetOrCreate) {
  Registry registry;
  registry.counter("dup").inc(3);
  registry.counter("dup").inc(4);
  EXPECT_EQ(sample(registry.snapshot(), "dup"), 7.0);
}

TEST(ObsRegistryTest, GaugeLastWriteAndAdd) {
  Registry registry;
  Gauge gauge = registry.gauge("depth");
  gauge.set(42);
  gauge.add(-2);
  EXPECT_EQ(sample(registry.snapshot(), "depth"), 40.0);
  gauge.set(-7);
  EXPECT_EQ(sample(registry.snapshot(), "depth"), -7.0);
}

TEST(ObsRegistryTest, HistogramBucketsCountAndSum) {
  Registry registry;
  Histogram hist = registry.histogram("size", {10, 100});
  for (const std::uint64_t v : {1u, 10u, 11u, 100u, 1000u}) hist.observe(v);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(sample(snapshot, "size", "le:10"), 2.0);    // 1, 10
  EXPECT_EQ(sample(snapshot, "size", "le:100"), 2.0);   // 11, 100
  EXPECT_EQ(sample(snapshot, "size", "le:+Inf"), 1.0);  // 1000
  EXPECT_EQ(sample(snapshot, "size.count"), 5.0);
  EXPECT_EQ(sample(snapshot, "size.sum"), 1122.0);
}

TEST(ObsRegistryTest, WrongKindReRequestReturnsInertHandle) {
  Registry registry;
  registry.counter("name").inc();
  Gauge wrong = registry.gauge("name");
  EXPECT_FALSE(static_cast<bool>(wrong));
  wrong.set(99);  // must not crash or corrupt the counter
  EXPECT_EQ(sample(registry.snapshot(), "name"), 1.0);
}

TEST(ObsRegistryTest, ProbesReplaceAndUnregisterByPrefix) {
  Registry registry;
  registry.register_probe("run.depth", [] { return 1.0; });
  registry.register_probe("run.depth", [] { return 2.0; });  // replaces
  registry.register_probe("run.steals", [] { return 3.0; });
  registry.register_probe("keep.me", [] { return 4.0; });
  auto snapshot = registry.snapshot();
  EXPECT_EQ(sample(snapshot, "run.depth"), 2.0);
  EXPECT_EQ(sample(snapshot, "run.steals"), 3.0);
  registry.unregister_prefix("run.");
  snapshot = registry.snapshot();
  EXPECT_EQ(find_sample(snapshot, "run.depth"), nullptr);
  EXPECT_EQ(find_sample(snapshot, "run.steals"), nullptr);
  EXPECT_EQ(sample(snapshot, "keep.me"), 4.0);
}

TEST(ObsRegistryTest, SnapshotSortedByName) {
  Registry registry;
  registry.counter("zz").inc();
  registry.counter("aa").inc();
  registry.register_probe("mm", [] { return 1.0; });
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      snapshot.begin(), snapshot.end(),
      [](const MetricSample& a, const MetricSample& b) {
        return a.name < b.name;
      }));
}

TEST(ObsRegistryTest, RenderTextPrometheusShape) {
  Registry registry;
  registry.counter("pipeline.judge.errors").inc(2);
  registry.histogram("chunk", {8}).observe(3);
  const std::string text = registry.render_text();
  EXPECT_NE(text.find("# TYPE llm4vv_pipeline_judge_errors untyped\n"),
            std::string::npos);
  EXPECT_NE(text.find("llm4vv_pipeline_judge_errors 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE llm4vv_chunk histogram\n"), std::string::npos);
  EXPECT_NE(text.find("llm4vv_chunk{le=\"8\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("llm4vv_chunk{le=\"+Inf\"} 0\n"), std::string::npos);
}

TEST(ObsRegistryTest, NullHandlesAreInert) {
  Counter counter;
  Gauge gauge;
  Histogram hist;
  counter.inc();
  gauge.set(1);
  hist.observe(1);  // must not crash
  EXPECT_FALSE(static_cast<bool>(counter));
  EXPECT_FALSE(static_cast<bool>(gauge));
  EXPECT_FALSE(static_cast<bool>(hist));
}

TEST(ObsTracerTest, RecordsFromManyThreadsCollectSorted) {
  Tracer tracer;
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kSpans = 50;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (std::size_t i = 0; i < kSpans; ++i) {
        ObsSpan span(&tracer, SpanKind::kExecute, t * kSpans + i + 1);
        span.set_arg(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), kThreads * kSpans);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const TraceEvent& a, const TraceEvent& b) {
                               return a.start_us < b.start_us ||
                                      (a.start_us == b.start_us &&
                                       a.span_id < b.span_id);
                             }));
  // Every span got a distinct id and a ring tid.
  std::set<std::uint64_t> ids;
  std::set<std::uint32_t> tids;
  for (const auto& event : events) {
    ids.insert(event.span_id);
    tids.insert(event.tid);
    EXPECT_GE(event.end_us, event.start_us);
  }
  EXPECT_EQ(ids.size(), events.size());
  EXPECT_EQ(tids.size(), kThreads);
}

TEST(ObsTracerTest, RingBoundsDropOldest) {
  Tracer tracer(/*ring_capacity=*/4);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    ObsSpan span(&tracer, SpanKind::kCompile, i);
    span.end();
  }
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  // The survivors are the newest four, still in order.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].trace_id, 7 + i);
  }
}

TEST(ObsSpanTest, RaiiRecordsOnDestruction) {
  Tracer tracer;
  {
    ObsSpan span(&tracer, SpanKind::kJudge, 3, /*parent_id=*/9);
    span.set_arg(2);
    span.set_gpu_seconds(1.5);
    span.set_flow(77);
  }
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, SpanKind::kJudge);
  EXPECT_EQ(events[0].trace_id, 3u);
  EXPECT_EQ(events[0].parent_id, 9u);
  EXPECT_EQ(events[0].arg, 2);
  EXPECT_EQ(events[0].gpu_seconds, 1.5);
  EXPECT_EQ(events[0].flow_id, 77u);
  EXPECT_NE(events[0].span_id, 0u);
}

TEST(ObsSpanTest, EndIsIdempotentAndBackdatingSticks) {
  Tracer tracer;
  ObsSpan span(&tracer, SpanKind::kQueueWait, 1);
  span.set_start_us(123);
  span.end();
  span.end();  // second end must not double-record
  const auto events = tracer.collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_us, 123u);
}

TEST(ObsSpanTest, NullTracerSpanIsInert) {
  ObsSpan span(nullptr, SpanKind::kRun, 0);
  EXPECT_FALSE(static_cast<bool>(span));
  span.set_arg(1);
  span.end();  // no-op, no crash
  ObsSpan defaulted;
  EXPECT_FALSE(static_cast<bool>(defaulted));
}

TEST(ObsSpanTest, MoveTransfersOwnership) {
  Tracer tracer;
  ObsSpan a(&tracer, SpanKind::kFlush, 0);
  ObsSpan b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  b.end();
  EXPECT_EQ(tracer.collect().size(), 1u);
}

std::vector<TraceEvent> synthetic_events() {
  // A flush (flow origin 500), a judge span served by it, and a judge span
  // referencing a flow whose origin is NOT in the trace (cache replay).
  TraceEvent flush;
  flush.kind = SpanKind::kFlush;
  flush.span_id = 500;
  flush.flow_id = 500;
  flush.start_us = 1000;
  flush.end_us = 1400;
  flush.arg = 3;
  flush.tid = 1;
  TraceEvent judged;
  judged.kind = SpanKind::kJudge;
  judged.trace_id = 7;
  judged.span_id = 501;
  judged.flow_id = 500;
  judged.start_us = 900;
  judged.end_us = 1500;
  judged.arg = 2;
  judged.gpu_seconds = 12.25;
  judged.tid = 2;
  TraceEvent replayed;
  replayed.kind = SpanKind::kJudge;
  replayed.trace_id = 8;
  replayed.span_id = 502;
  replayed.flow_id = 99999;  // origin not collected
  replayed.start_us = 950;
  replayed.end_us = 960;
  replayed.tid = 2;
  return {judged, replayed, flush};
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ObsExportTest, ChromeTraceShapeAndFlowGuard) {
  std::ostringstream out;
  write_chrome_trace(out, synthetic_events(), /*dropped_events=*/2);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(text.find("\"dropped_events\":2"), std::string::npos);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"X\""), 3u);
  // Timestamps rebase to the earliest span (the judge span at 900).
  EXPECT_NE(text.find("\"ts\":0,"), std::string::npos);
  // Exactly one flow origin (the flush) and one flow target (the served
  // judge span); the cache-replayed span's unknown flow id emits nothing.
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"f\""), 1u);
  EXPECT_NE(text.find("\"bp\":\"e\""), std::string::npos);
  // Metadata names the process and both worker threads.
  EXPECT_EQ(count_occurrences(text, "\"ph\":\"M\""), 3u);
  EXPECT_NE(text.find("\"gpu_s\":12.25"), std::string::npos);
  EXPECT_NE(text.find("\"verdict\":2"), std::string::npos);
  EXPECT_NE(text.find("\"batch_size\":3"), std::string::npos);
}

TEST(ObsExportTest, JsonlLinesParseFlat) {
  std::ostringstream out;
  write_span_jsonl(out, synthetic_events());
  const auto lines = support::split_lines(out.str());
  std::size_t parsed = 0;
  for (const auto& line : lines) {
    if (line.empty()) continue;
    const auto object = support::parse_json_object_line(line);
    ASSERT_TRUE(object.has_value()) << line;
    EXPECT_NE(object->find("kind"), object->end());
    EXPECT_NE(object->find("trace_id"), object->end());
    EXPECT_NE(object->find("start_us"), object->end());
    EXPECT_NE(object->find("dur_us"), object->end());
    ++parsed;
  }
  EXPECT_EQ(parsed, 3u);
}

TEST(ObsExportTest, EmptyTraceIsStillValid) {
  std::ostringstream out;
  write_chrome_trace(out, {}, 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(text.find("\"dropped_events\":0"), std::string::npos);
}

}  // namespace
}  // namespace llm4vv::obs
