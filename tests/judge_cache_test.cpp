#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "corpus/generator.hpp"
#include "judge/judge.hpp"
#include "llm/coder_model.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::judge {
namespace {

using frontend::Flavor;
using frontend::Language;

std::shared_ptr<llm::ModelClient> make_client() {
  return std::make_shared<llm::ModelClient>(
      std::make_shared<const llm::SimulatedCoderModel>(), 2);
}

frontend::SourceFile sample_file(std::uint64_t seed = 3) {
  return corpus::generate_one("saxpy_offload", Flavor::kOpenACC,
                              Language::kC, seed)
      .file;
}

void expect_same_decision(const JudgeDecision& a, const JudgeDecision& b) {
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.says_valid, b.says_valid);
  EXPECT_EQ(a.prompt, b.prompt);
  EXPECT_EQ(a.completion.text, b.completion.text);
  EXPECT_EQ(a.completion.prompt_tokens, b.completion.prompt_tokens);
  EXPECT_EQ(a.completion.completion_tokens, b.completion.completion_tokens);
  EXPECT_DOUBLE_EQ(a.completion.latency_seconds,
                   b.completion.latency_seconds);
}

TEST(JudgeCacheTest, CachedDecisionIdenticalToUncached) {
  auto client = make_client();
  const Llmj cached_judge(client, llm::PromptStyle::kAgentDirect);
  JudgeCacheConfig off;
  off.enabled = false;
  const Llmj plain_judge(client, llm::PromptStyle::kAgentDirect, off);

  const auto file = sample_file();
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled = driver.compile(file);
  const toolchain::Executor executor;
  const auto ran = executor.run(compiled.module);

  const auto first = cached_judge.evaluate(file, &compiled, &ran, 5);
  const auto second = cached_judge.evaluate(file, &compiled, &ran, 5);
  const auto reference = plain_judge.evaluate(file, &compiled, &ran, 5);

  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached);
  EXPECT_FALSE(reference.cached);
  expect_same_decision(second, first);
  expect_same_decision(second, reference);

  const auto stats = cached_judge.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(JudgeCacheTest, SeedAndOutcomeChangesMissTheCache) {
  auto client = make_client();
  const Llmj judge(client, llm::PromptStyle::kAgentDirect);
  const auto file = sample_file();
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled = driver.compile(file);
  const toolchain::Executor executor;
  const auto ran = executor.run(compiled.module);

  (void)judge.evaluate(file, &compiled, &ran, 1);
  (void)judge.evaluate(file, &compiled, &ran, 2);  // different seed
  auto failed = compiled;
  failed.success = false;
  failed.return_code = 1;
  failed.stderr_text = "error: synthetic failure";
  (void)judge.evaluate(file, &failed, &ran, 1);  // different compile outcome

  const auto stats = judge.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);
}

TEST(JudgeCacheTest, DistinctFilesGetDistinctEntries) {
  auto client = make_client();
  const Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const auto a = judge.evaluate(sample_file(1));
  const auto b = judge.evaluate(sample_file(2));
  EXPECT_EQ(judge.cache_stats().misses, 2u);
  // Same file again: a hit with the same decision.
  const auto a2 = judge.evaluate(sample_file(1));
  EXPECT_TRUE(a2.cached);
  expect_same_decision(a2, a);
  EXPECT_NE(a.prompt, b.prompt);
}

TEST(JudgeCacheTest, CapacityBoundEvictsOldestFirst) {
  JudgeCacheConfig config;
  config.capacity = 2;
  config.shards = 1;
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis, config);
  (void)judge.evaluate(sample_file(1));
  (void)judge.evaluate(sample_file(2));
  (void)judge.evaluate(sample_file(3));  // evicts file(1)
  EXPECT_EQ(judge.cache_stats().evictions, 1u);
  const auto again = judge.evaluate(sample_file(3));
  EXPECT_TRUE(again.cached);
  const auto oldest = judge.evaluate(sample_file(1));  // evicted -> miss
  EXPECT_FALSE(oldest.cached);
}

TEST(JudgeCacheTest, DisabledCacheNeverHitsAndCountsNothing) {
  JudgeCacheConfig off;
  off.enabled = false;
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis, off);
  const auto file = sample_file();
  EXPECT_FALSE(judge.evaluate(file).cached);
  EXPECT_FALSE(judge.evaluate(file).cached);
  const auto stats = judge.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(JudgeCacheTest, ZeroCapacityDisablesCache) {
  JudgeCacheConfig config;
  config.capacity = 0;
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis, config);
  const auto file = sample_file();
  EXPECT_FALSE(judge.evaluate(file).cached);
  EXPECT_FALSE(judge.evaluate(file).cached);
  EXPECT_EQ(judge.cache_stats().hits, 0u);
}

TEST(JudgeCacheTest, ClearCacheForcesRecomputeWithSameResult) {
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis);
  const auto file = sample_file();
  const auto first = judge.evaluate(file);
  judge.clear_cache();
  const auto second = judge.evaluate(file);
  EXPECT_FALSE(second.cached);
  expect_same_decision(second, first);
}

TEST(JudgeCacheTest, ConcurrentEvaluationsAgreeAndAreCounted) {
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis);
  const auto file = sample_file();
  const auto reference = judge.evaluate(file);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const auto decision = judge.evaluate(file);
        if (decision.verdict != reference.verdict ||
            decision.completion.text != reference.completion.text) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = judge.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 201u);
  EXPECT_GE(stats.hits, 200u);  // every post-seed call hits
}

}  // namespace
}  // namespace llm4vv::judge
