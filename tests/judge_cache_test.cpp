#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "corpus/generator.hpp"
#include "judge/judge.hpp"
#include "llm/coder_model.hpp"
#include "tests/test_util.hpp"

namespace llm4vv::judge {
namespace {

using frontend::Flavor;
using frontend::Language;

std::shared_ptr<llm::ModelClient> make_client() {
  return std::make_shared<llm::ModelClient>(
      std::make_shared<const llm::SimulatedCoderModel>(), 2);
}

frontend::SourceFile sample_file(std::uint64_t seed = 3) {
  return corpus::generate_one("saxpy_offload", Flavor::kOpenACC,
                              Language::kC, seed)
      .file;
}

void expect_same_decision(const JudgeDecision& a, const JudgeDecision& b) {
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.says_valid, b.says_valid);
  EXPECT_EQ(a.prompt, b.prompt);
  EXPECT_EQ(a.completion.text, b.completion.text);
  EXPECT_EQ(a.completion.prompt_tokens, b.completion.prompt_tokens);
  EXPECT_EQ(a.completion.completion_tokens, b.completion.completion_tokens);
  EXPECT_DOUBLE_EQ(a.completion.latency_seconds,
                   b.completion.latency_seconds);
}

TEST(JudgeCacheTest, CachedDecisionIdenticalToUncached) {
  auto client = make_client();
  const Llmj cached_judge(client, llm::PromptStyle::kAgentDirect);
  JudgeCacheConfig off;
  off.enabled = false;
  const Llmj plain_judge(client, llm::PromptStyle::kAgentDirect, off);

  const auto file = sample_file();
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled = driver.compile(file);
  const toolchain::Executor executor;
  const auto ran = executor.run(compiled.module);

  const auto first = cached_judge.evaluate(file, &compiled, &ran, 5);
  const auto second = cached_judge.evaluate(file, &compiled, &ran, 5);
  const auto reference = plain_judge.evaluate(file, &compiled, &ran, 5);

  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached);
  EXPECT_FALSE(reference.cached);
  expect_same_decision(second, first);
  expect_same_decision(second, reference);

  const auto stats = cached_judge.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(JudgeCacheTest, SeedAndOutcomeChangesMissTheCache) {
  auto client = make_client();
  const Llmj judge(client, llm::PromptStyle::kAgentDirect);
  const auto file = sample_file();
  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const auto compiled = driver.compile(file);
  const toolchain::Executor executor;
  const auto ran = executor.run(compiled.module);

  (void)judge.evaluate(file, &compiled, &ran, 1);
  (void)judge.evaluate(file, &compiled, &ran, 2);  // different seed
  auto failed = compiled;
  failed.success = false;
  failed.return_code = 1;
  failed.stderr_text = "error: synthetic failure";
  (void)judge.evaluate(file, &failed, &ran, 1);  // different compile outcome

  const auto stats = judge.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);
}

TEST(JudgeCacheTest, DistinctFilesGetDistinctEntries) {
  auto client = make_client();
  const Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const auto a = judge.evaluate(sample_file(1));
  const auto b = judge.evaluate(sample_file(2));
  EXPECT_EQ(judge.cache_stats().misses, 2u);
  // Same file again: a hit with the same decision.
  const auto a2 = judge.evaluate(sample_file(1));
  EXPECT_TRUE(a2.cached);
  expect_same_decision(a2, a);
  EXPECT_NE(a.prompt, b.prompt);
}

TEST(JudgeCacheTest, CapacityBoundEvictsOldestFirst) {
  JudgeCacheConfig config;
  config.capacity = 2;
  config.shards = 1;
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis, config);
  (void)judge.evaluate(sample_file(1));
  (void)judge.evaluate(sample_file(2));
  (void)judge.evaluate(sample_file(3));  // evicts file(1)
  EXPECT_EQ(judge.cache_stats().evictions, 1u);
  const auto again = judge.evaluate(sample_file(3));
  EXPECT_TRUE(again.cached);
  const auto oldest = judge.evaluate(sample_file(1));  // evicted -> miss
  EXPECT_FALSE(oldest.cached);
}

TEST(JudgeCacheTest, DisabledCacheNeverHitsAndCountsNothing) {
  JudgeCacheConfig off;
  off.enabled = false;
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis, off);
  const auto file = sample_file();
  EXPECT_FALSE(judge.evaluate(file).cached);
  EXPECT_FALSE(judge.evaluate(file).cached);
  const auto stats = judge.cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(JudgeCacheTest, ZeroCapacityDisablesCache) {
  JudgeCacheConfig config;
  config.capacity = 0;
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis, config);
  const auto file = sample_file();
  EXPECT_FALSE(judge.evaluate(file).cached);
  EXPECT_FALSE(judge.evaluate(file).cached);
  EXPECT_EQ(judge.cache_stats().hits, 0u);
}

TEST(JudgeCacheTest, ClearCacheForcesRecomputeWithSameResult) {
  Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis);
  const auto file = sample_file();
  const auto first = judge.evaluate(file);
  judge.clear_cache();
  const auto second = judge.evaluate(file);
  EXPECT_FALSE(second.cached);
  expect_same_decision(second, first);
}

// ---------------------------------------------------------------------------
// evaluate_many: batched submission through the memo cache
// ---------------------------------------------------------------------------

TEST(EvaluateManyTest, MatchesSequentialEvaluate) {
  auto client = make_client();
  JudgeCacheConfig off;
  off.enabled = false;
  const Llmj batched(client, llm::PromptStyle::kAgentDirect, off);
  const Llmj sequential(client, llm::PromptStyle::kAgentDirect, off);

  const auto driver = testutil::clean_driver(Flavor::kOpenACC);
  const toolchain::Executor executor;
  std::vector<frontend::SourceFile> files;
  std::vector<toolchain::CompileResult> compiles;
  std::vector<toolchain::ExecutionRecord> execs;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    files.push_back(sample_file(seed));
    compiles.push_back(driver.compile(files.back()));
    execs.push_back(executor.run(compiles.back().module));
  }
  std::vector<JudgeRequest> requests;
  for (std::size_t i = 0; i < files.size(); ++i) {
    requests.push_back(JudgeRequest{&files[i], &compiles[i], &execs[i]});
  }

  const auto decisions = batched.evaluate_many(requests, 7);
  ASSERT_EQ(decisions.size(), files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto reference =
        sequential.evaluate(files[i], &compiles[i], &execs[i], 7);
    EXPECT_EQ(decisions[i].verdict, reference.verdict) << i;
    EXPECT_EQ(decisions[i].says_valid, reference.says_valid) << i;
    EXPECT_EQ(decisions[i].prompt, reference.prompt) << i;
    EXPECT_EQ(decisions[i].completion.text, reference.completion.text) << i;
    EXPECT_EQ(decisions[i].completion.prompt_tokens,
              reference.completion.prompt_tokens)
        << i;
    EXPECT_EQ(decisions[i].completion.completion_tokens,
              reference.completion.completion_tokens)
        << i;
  }
}

TEST(EvaluateManyTest, PartitionsHitsAndMissesAndFillsCache) {
  auto client = make_client();
  const Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const auto warm = sample_file(1);
  const auto cold_a = sample_file(2);
  const auto cold_b = sample_file(3);
  (void)judge.evaluate(warm);  // pre-warm one key

  std::vector<JudgeRequest> requests = {JudgeRequest{&warm},
                                        JudgeRequest{&cold_a},
                                        JudgeRequest{&cold_b}};
  const auto decisions = judge.evaluate_many(requests);
  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_TRUE(decisions[0].cached);
  EXPECT_FALSE(decisions[1].cached);
  EXPECT_FALSE(decisions[2].cached);

  const auto stats = judge.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);  // warm-up + the two cold files
  // The two cold misses went to the model as one batched pass.
  EXPECT_EQ(client->stats().batches, 1u);
  EXPECT_EQ(client->stats().batched_prompts, 2u);

  // Both cold keys are now memoized.
  EXPECT_TRUE(judge.evaluate(cold_a).cached);
  EXPECT_TRUE(judge.evaluate(cold_b).cached);
}

TEST(EvaluateManyTest, InBatchDuplicatesAreDeduplicated) {
  auto client = make_client();
  const Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const auto file = sample_file(4);
  std::vector<JudgeRequest> requests = {JudgeRequest{&file},
                                        JudgeRequest{&file},
                                        JudgeRequest{&file}};
  const auto decisions = judge.evaluate_many(requests);
  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_FALSE(decisions[0].cached);
  EXPECT_TRUE(decisions[1].cached);
  EXPECT_TRUE(decisions[2].cached);
  EXPECT_EQ(decisions[1].completion.text, decisions[0].completion.text);
  EXPECT_EQ(decisions[2].verdict, decisions[0].verdict);

  const auto stats = judge.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.duplicate_misses, 2u);
  EXPECT_EQ(client->stats().requests, 1u);  // one model call total
}

TEST(EvaluateManyTest, DisabledCacheSubmitsEveryItemIncludingDuplicates) {
  auto client = make_client();
  JudgeCacheConfig off;
  off.enabled = false;
  const Llmj judge(client, llm::PromptStyle::kDirectAnalysis, off);
  const auto file = sample_file(5);
  std::vector<JudgeRequest> requests = {JudgeRequest{&file},
                                        JudgeRequest{&file}};
  const auto decisions = judge.evaluate_many(requests);
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_FALSE(decisions[0].cached);
  EXPECT_FALSE(decisions[1].cached);
  EXPECT_EQ(decisions[0].completion.text, decisions[1].completion.text);
  // Paper accounting: both copies hit the model, in one batched pass.
  EXPECT_EQ(client->stats().requests, 2u);
  EXPECT_EQ(client->stats().batches, 1u);
}

TEST(EvaluateManyTest, EmptyBatchYieldsNoDecisions) {
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis);
  EXPECT_TRUE(judge.evaluate_many({}).empty());
  EXPECT_EQ(judge.cache_stats().misses, 0u);
}

// ---------------------------------------------------------------------------
// In-flight dedup (thundering herd)
// ---------------------------------------------------------------------------

TEST(JudgeDedupTest, ConcurrentMissesOnOneKeyPayASingleModelCall) {
  auto model = std::make_shared<const testutil::GatedModel>();
  auto client = std::make_shared<llm::ModelClient>(model, 4);
  const Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const auto file = sample_file(6);

  std::vector<std::thread> threads;
  std::vector<JudgeDecision> decisions(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&judge, &file, &decisions, t] { decisions[t] = judge.evaluate(file); });
  }
  // Exactly one thread reaches the model (the others find the key in
  // flight); park the remaining threads, then open the gate.
  model->wait_for_entry();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  model->release();
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(model->entered(), 1);
  EXPECT_EQ(client->stats().requests, 1u);
  for (int t = 1; t < 4; ++t) {
    EXPECT_EQ(decisions[t].verdict, decisions[0].verdict);
    EXPECT_EQ(decisions[t].completion.text, decisions[0].completion.text);
  }
  const auto stats = judge.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  // Every other caller either piggybacked on the in-flight computation or
  // (if it arrived after publication) hit the cache outright.
  EXPECT_EQ(stats.hits + stats.duplicate_misses, 3u);
}

// clear_cache() now also resets the in-flight sets and wakes waiters. A
// clear issued while one thread computes a key and another waits on it
// must leave nobody stranded: the waiter either re-claims the key and
// recomputes, or is served by the owner's (re-)publication — both produce
// the same deterministic decision.
TEST(JudgeDedupTest, ClearDuringConcurrentEvaluationStrandsNobody) {
  auto model = std::make_shared<const testutil::GatedModel>();
  auto client = std::make_shared<llm::ModelClient>(model, 4);
  Llmj judge(client, llm::PromptStyle::kDirectAnalysis);
  const auto file = sample_file(8);

  std::thread owner([&judge, &file] { (void)judge.evaluate(file); });
  model->wait_for_entry();  // owner is inside the model, key in flight

  std::thread waiter([&judge, &file] { (void)judge.evaluate(file); });
  // Let the waiter park on the in-flight key, then clear everything.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  judge.clear_cache();
  model->release();

  owner.join();
  waiter.join();  // must terminate: the regression was a hang right here

  // Post-clear evaluations still work and are deterministic.
  const auto after = judge.evaluate(file);
  const auto again = judge.evaluate(file);
  EXPECT_EQ(again.verdict, after.verdict);
  EXPECT_EQ(again.completion.text, after.completion.text);
}

TEST(JudgeDedupTest, DuplicateMissesStartAtZero) {
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis);
  (void)judge.evaluate(sample_file(7));
  (void)judge.evaluate(sample_file(7));
  const auto stats = judge.cache_stats();
  EXPECT_EQ(stats.duplicate_misses, 0u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(JudgeCacheTest, ConcurrentEvaluationsAgreeAndAreCounted) {
  const Llmj judge(make_client(), llm::PromptStyle::kDirectAnalysis);
  const auto file = sample_file();
  const auto reference = judge.evaluate(file);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const auto decision = judge.evaluate(file);
        if (decision.verdict != reference.verdict ||
            decision.completion.text != reference.completion.text) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = judge.cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 201u);
  EXPECT_GE(stats.hits, 200u);  // every post-seed call hits
}

}  // namespace
}  // namespace llm4vv::judge
