// Sanitizer-targeted stress suite (docs/STATIC_ANALYSIS.md). These tests
// exist to give ThreadSanitizer and AddressSanitizer dense interleavings
// over the code paths the thread-safety annotations protect: the sharded
// queue's steal scan, the adaptive batcher's window-flush racing inline
// flushes, the circuit breaker's half-open transitions, and concurrent
// artifact-store save/put traffic. They build and pass in every
// configuration (each also asserts real invariants), but their sizing —
// many small operations across few threads, bounded wall-clock — is chosen
// for instrumented runs: the TSan and ASan+UBSan CI legs execute exactly
// the `sanitizer`-labeled ctest suite this file anchors.
//
// PaperModeSimGpu pins the paper-mode accounting *under instrumentation*:
// sanitizers perturb timing and interleavings, and the simulated GPU
// seconds must not care.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/artifact_store.hpp"
#include "core/llm4vv.hpp"
#include "support/mpmc_queue.hpp"
#include "support/thread_pool.hpp"
#include "tests/test_util.hpp"

namespace llm4vv {
namespace {

// Sized for instrumented runs on small machines: every scenario finishes
// in well under a second uninstrumented.
constexpr std::size_t kThreads = 4;
constexpr std::size_t kItemsPerThread = 400;

// ---------------------------------------------------------------------------
// MpmcQueue: the steal scan (pop draining a non-home shard) is the queue's
// subtlest path — a consumer holds no lock while choosing the next shard to
// scan, so every item handoff it performs must still be properly ordered.
// ---------------------------------------------------------------------------

TEST(TsanStressTest, QueueStealScanDeliversEveryItemOnce) {
  support::MpmcQueue<std::uint64_t> queue(64, /*shards=*/4);
  std::atomic<std::uint64_t> popped_sum{0};
  std::atomic<std::size_t> popped_count{0};

  std::vector<std::thread> consumers;
  for (std::size_t c = 0; c < kThreads; ++c) {
    consumers.emplace_back([&] {
      std::vector<std::uint64_t> batch;
      for (;;) {
        // Alternate the single-pop and batched-pop paths so the home-shard
        // fast path and the steal scan both run under the sanitizer.
        if (auto item = queue.pop()) {
          popped_sum.fetch_add(*item, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          break;  // closed and drained
        }
        batch.clear();
        const std::size_t n = queue.pop_up_to(8, batch);
        for (std::size_t i = 0; i < n; ++i) {
          popped_sum.fetch_add(batch[i], std::memory_order_relaxed);
        }
        popped_count.fetch_add(n, std::memory_order_relaxed);
      }
    });
  }

  std::uint64_t pushed_sum = 0;
  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kThreads; ++p) {
    producers.emplace_back([&, p] {
      for (std::size_t i = 0; i < kItemsPerThread; ++i) {
        const std::uint64_t value = p * kItemsPerThread + i + 1;
        if ((i & 3) == 0) {
          while (!queue.try_push(value)) std::this_thread::yield();
        } else {
          ASSERT_TRUE(queue.push(value));
        }
      }
    });
  }
  for (std::size_t p = 0; p < kThreads; ++p) {
    for (std::size_t i = 0; i < kItemsPerThread; ++i) {
      pushed_sum += p * kItemsPerThread + i + 1;
    }
  }

  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(popped_count.load(), kThreads * kItemsPerThread);
  EXPECT_EQ(popped_sum.load(), pushed_sum);
  EXPECT_EQ(queue.size(), 0u);
}

// ---------------------------------------------------------------------------
// ThreadPool: wait_idle() racing a stream of posts from another thread.
// ---------------------------------------------------------------------------

TEST(TsanStressTest, ThreadPoolWaitIdleUnderChurn) {
  support::ThreadPool pool(kThreads);
  std::atomic<std::size_t> executed{0};
  for (std::size_t round = 0; round < 8; ++round) {
    for (std::size_t i = 0; i < 64; ++i) {
      pool.post([&] { executed.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(executed.load(), (round + 1) * 64);
  }
}

// ---------------------------------------------------------------------------
// Adaptive batcher: concurrent submitters race the window-flush thread
// against inline full-batch flushes. Every future must resolve, and each
// completion must be byte-identical to the sequential reference.
// ---------------------------------------------------------------------------

TEST(TsanStressTest, BatcherWindowFlushRacesInlineFlush) {
  auto model = std::make_shared<const llm::SimulatedCoderModel>();
  llm::BatcherConfig batcher;
  batcher.max_batch = 3;      // inline full-batch flushes...
  batcher.window_us = 200;    // ...racing a fast window flusher
  llm::ModelClient client(model, 2, 0, batcher);
  llm::ModelClient reference(model, 1);

  llm::GenerationParams params;
  params.seed = 21;

  constexpr std::size_t kPrompts = 24;
  std::vector<std::string> prompts;
  prompts.reserve(kPrompts);
  for (std::size_t i = 0; i < kPrompts; ++i) {
    prompts.push_back("tsan stress prompt #" + std::to_string(i));
  }

  std::vector<llm::Completion> results(kPrompts);
  std::vector<std::thread> submitters;
  std::atomic<std::size_t> next{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= kPrompts) break;
        results[i] = client.submit(prompts[i], params).get();
      }
    });
  }
  for (auto& t : submitters) t.join();

  for (std::size_t i = 0; i < kPrompts; ++i) {
    const auto expected = reference.complete(prompts[i], params);
    EXPECT_EQ(results[i].text, expected.text) << "prompt " << i;
    EXPECT_EQ(results[i].completion_tokens, expected.completion_tokens);
  }
  const auto stats = client.stats();
  EXPECT_EQ(stats.requests, kPrompts);
}

// ---------------------------------------------------------------------------
// Circuit breaker: a high transient-fault rate drives open/half-open/closed
// transitions while submitters hammer the client and a monitor thread polls
// breaker_state(). Futures must all resolve (success or a typed error).
// ---------------------------------------------------------------------------

TEST(TsanStressTest, BreakerHalfOpenTransitionsUnderLoad) {
  llm::CoderModelConfig model_config;
  llm::FaultPlanConfig faults;
  faults.transient_rate = 0.6;
  faults.seed = 99;
  model_config.faults = std::make_shared<const llm::FaultPlan>(faults);
  auto model = std::make_shared<const llm::SimulatedCoderModel>(model_config);

  llm::CircuitBreakerConfig breaker;
  breaker.enabled = true;
  breaker.window = 8;
  breaker.min_samples = 4;
  breaker.open_failure_rate = 0.5;
  breaker.cooldown_us = 500;  // short cooldown: many half-open probes
  llm::ModelClient client(model, 2, 0, llm::BatcherConfig{},
                          llm::RetryPolicy{}, breaker);

  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)client.breaker_state();
      (void)client.queue_depth();
      (void)client.pending_depth();
      std::this_thread::yield();
    }
  });

  std::atomic<std::size_t> succeeded{0};
  std::atomic<std::size_t> failed{0};
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      llm::GenerationParams params;
      params.seed = 7 + t;
      for (std::size_t i = 0; i < 48; ++i) {
        auto future = client.submit(
            "breaker stress " + std::to_string(t * 100 + i), params);
        try {
          (void)future.get();
          succeeded.fetch_add(1, std::memory_order_relaxed);
        } catch (const llm::ModelError&) {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  stop.store(true, std::memory_order_release);
  monitor.join();

  // Every future resolved one way or the other, and with a 60% transient
  // rate both outcomes occurred.
  EXPECT_EQ(succeeded.load() + failed.load(), kThreads * 48);
  EXPECT_GT(succeeded.load(), 0u);
  EXPECT_GT(failed.load(), 0u);
}

// ---------------------------------------------------------------------------
// ArtifactStore: concurrent put/get traffic racing whole-store save()
// calls. The save path snapshots under the writer lock and serializes on
// its own mutex; a sanitizer must see no conflict with readers.
// ---------------------------------------------------------------------------

TEST(TsanStressTest, ConcurrentStoreSaveAndPut) {
  testutil::TempFile file("tsan_store");
  cache::ArtifactStoreConfig config;
  config.path = file.path();
  config.max_records = 512;
  cache::ArtifactStore store(config);

  std::vector<std::thread> writers;
  std::atomic<std::size_t> saves_ok{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 128; ++i) {
        const std::uint64_t key = t * 1000 + i;
        store.put("stress", key, key ^ 0xABCD,
                  {{"v", std::to_string(key)}});
        if (auto fields = store.get("stress", key, key ^ 0xABCD)) {
          const std::string* v = cache::find_field(*fields, "v");
          ASSERT_NE(v, nullptr);
          EXPECT_EQ(*v, std::to_string(key));
        }
        if ((i & 31) == 0) {
          if (store.save()) saves_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_TRUE(store.save());
  EXPECT_GT(saves_ok.load(), 0u);

  // The published file must round-trip: a fresh store loads every record
  // that survived compaction.
  cache::ArtifactStore reloaded(config);
  EXPECT_EQ(reloaded.load_report().cold_start, false);
  EXPECT_EQ(reloaded.size(), store.size());
}

// ---------------------------------------------------------------------------
// Paper-mode pinning under instrumentation: the early-filter ablation's
// seed-exact simulated GPU seconds (bench/perf_pipeline.cpp BM_PipelineMode
// filter:0/invalid_tenths:0 and the CI jq gate) must hold when the whole
// pipeline runs under TSan/ASan — the accounting is deterministic in
// values, only wall-clock may stretch.
// ---------------------------------------------------------------------------

TEST(TsanStressTest, PaperModeSimGpuSecondsExactUnderSanitizers) {
  const auto suite = corpus::generate_suite(
      testutil::corpus_config(frontend::Flavor::kOpenACC, 120 + 32, 1234));

  probing::ProbingConfig probe;
  probe.issue_counts = {0, 0, 0, 0, 0, 120};
  probe.seed = 77;
  const auto probed = probing::probe_suite(suite, probe);
  std::vector<frontend::SourceFile> files;
  files.reserve(probed.files.size());
  for (const auto& f : probed.files) files.push_back(f.file);

  auto client = core::make_simulated_client(2);
  judge::JudgeCacheConfig cache;
  cache.enabled = false;
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect, cache);
  pipeline::PipelineConfig config;
  config.mode = pipeline::PipelineMode::kRecordAll;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 2;
  config.judge_batch_size = 1;
  const pipeline::ValidationPipeline pipe(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), judge, config);

  const auto result = pipe.run(files);
  EXPECT_NEAR(result.judge_gpu_seconds, 1606.13, 0.005);
  EXPECT_EQ(result.judge_stage.processed, files.size());
}

}  // namespace
}  // namespace llm4vv
