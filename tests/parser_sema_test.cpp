#include <gtest/gtest.h>

#include "tests/test_util.hpp"

namespace llm4vv::frontend {
namespace {

using testutil::analyze_source;

Program parse_ok(const std::string& source) {
  DiagnosticEngine diags;
  auto program = analyze_source(source, diags);
  EXPECT_FALSE(diags.has_errors()) << source;
  return program;
}

DiagnosticEngine parse_expecting_errors(const std::string& source) {
  DiagnosticEngine diags;
  analyze_source(source, diags);
  EXPECT_TRUE(diags.has_errors()) << source;
  return diags;
}

// ---------------------------------------------------------------------------
// Structure
// ---------------------------------------------------------------------------

TEST(ParserTest, MinimalMain) {
  const auto program = parse_ok("int main() { return 0; }");
  ASSERT_EQ(program.functions.size(), 1u);
  EXPECT_EQ(program.main_index, 0);
  EXPECT_EQ(program.functions[0].name, "main");
}

TEST(ParserTest, FunctionWithParams) {
  const auto program = parse_ok(
      "int add(int a, int b) { return a + b; }\n"
      "int main() { return add(1, 2) - 3; }");
  ASSERT_EQ(program.functions.size(), 2u);
  EXPECT_EQ(program.functions[0].params.size(), 2u);
}

TEST(ParserTest, ArrayParameterDecaysToPointer) {
  const auto program = parse_ok(
      "void fill(double a[], int n) { a[0] = n; }\n"
      "int main() { double v[4]; fill(v, 4); return 0; }");
  EXPECT_EQ(program.functions[0].params[0].type.pointer_depth, 1);
}

TEST(ParserTest, VoidParameterListIsEmpty) {
  const auto program = parse_ok("int main(void) { return 0; }");
  EXPECT_TRUE(program.functions[0].params.empty());
}

TEST(ParserTest, GlobalsAndArrays) {
  const auto program = parse_ok(
      "double data[16];\nint counter = 3;\nint main() { return 0; }");
  ASSERT_EQ(program.globals.size(), 2u);
  EXPECT_TRUE(program.globals[0].type.is_array);
  EXPECT_EQ(program.globals[0].type.array_extent, 16);
}

TEST(ParserTest, MultiDeclaratorWithPointers) {
  const auto program = parse_ok("int main() { int *p, q, r[3]; return 0; }");
  // One declaration statement with three declarators.
  const Stmt* body = program.functions[0].body.get();
  ASSERT_EQ(body->body[0]->decls.size(), 3u);
  EXPECT_EQ(body->body[0]->decls[0].type.pointer_depth, 1);
  EXPECT_EQ(body->body[0]->decls[1].type.pointer_depth, 0);
  EXPECT_TRUE(body->body[0]->decls[2].type.is_array);
}

TEST(ParserTest, PragmaAttachesToConstruct) {
  const auto program = parse_ok(
      "int main() {\n"
      "#pragma acc parallel loop\n"
      "  for (int i = 0; i < 4; i++) { }\n"
      "  return 0;\n"
      "}");
  ASSERT_EQ(program.pragmas.size(), 1u);
  EXPECT_NE(program.pragmas[0]->then_branch, nullptr);
  EXPECT_EQ(program.pragmas[0]->then_branch->kind, StmtKind::kFor);
}

TEST(ParserTest, StandalonePragmaHasNoBody) {
  const auto program = parse_ok(
      "int main() {\n"
      "  double a[4];\n"
      "#pragma acc enter data copyin(a)\n"
      "  a[0] = 1.0;\n"
      "#pragma acc exit data delete(a)\n"
      "  return 0;\n"
      "}");
  ASSERT_EQ(program.pragmas.size(), 2u);
  EXPECT_EQ(program.pragmas[0]->then_branch, nullptr);
  EXPECT_EQ(program.pragmas[1]->then_branch, nullptr);
}

TEST(ParserTest, TopLevelPragmaCollected) {
  const auto program = parse_ok(
      "#pragma acc routine seq\n"
      "int helper(int x) { return x; }\n"
      "int main() { return helper(0); }");
  EXPECT_EQ(program.top_level_pragmas.size(), 1u);
  EXPECT_EQ(program.pragmas.size(), 1u);
}

// ---------------------------------------------------------------------------
// Error paths (the compile-stage teeth for issues 1 and 2)
// ---------------------------------------------------------------------------

TEST(ParserTest, MissingOpeningBraceOfFunctionFails) {
  const auto diags = parse_expecting_errors("int main() return 0; }");
  EXPECT_TRUE(diags.has_code(DiagCode::kMismatchedBrace));
}

TEST(ParserTest, MissingOpeningBraceMidFunctionFails) {
  parse_expecting_errors(
      "int main() {\n"
      "  int x = 0;\n"
      "  for (int i = 0; i < 3; i++)\n"  // '{' removed here
      "    x = x + i;\n"
      "    x = x * 2;\n"
      "  }\n"
      "  return x;\n"
      "}");
}

TEST(ParserTest, StrayClosingBraceFails) {
  const auto diags =
      parse_expecting_errors("int main() { } } int other() { return 0; }");
  EXPECT_TRUE(diags.has_code(DiagCode::kUnexpectedToken) ||
              diags.has_code(DiagCode::kMismatchedBrace));
}

TEST(ParserTest, UnclosedBlockAtEofFails) {
  const auto diags = parse_expecting_errors("int main() { int x = 1;");
  EXPECT_TRUE(diags.has_code(DiagCode::kMismatchedBrace));
}

TEST(SemaTest, UndeclaredIdentifierFails) {
  const auto diags =
      parse_expecting_errors("int main() { return mystery; }");
  EXPECT_TRUE(diags.has_code(DiagCode::kUndeclaredIdentifier));
}

TEST(SemaTest, UndeclaredFunctionCallFails) {
  const auto diags =
      parse_expecting_errors("int main() { return launch(); }");
  EXPECT_TRUE(diags.has_code(DiagCode::kUndeclaredIdentifier));
}

TEST(SemaTest, RedefinitionInSameScopeFails) {
  const auto diags =
      parse_expecting_errors("int main() { int x = 1; int x = 2; return x; }");
  EXPECT_TRUE(diags.has_code(DiagCode::kRedefinition));
}

TEST(SemaTest, ShadowingInInnerScopeIsFine) {
  parse_ok("int main() { int x = 1; { int x = 2; x = x; } return x; }");
}

TEST(SemaTest, CallArityMismatchFails) {
  const auto diags = parse_expecting_errors(
      "int add(int a, int b) { return a + b; }\n"
      "int main() { return add(1); }");
  EXPECT_TRUE(diags.has_code(DiagCode::kBadArity));
}

TEST(SemaTest, BuiltinArityChecked) {
  const auto diags =
      parse_expecting_errors("int main() { return fabs(1.0, 2.0); }");
  EXPECT_TRUE(diags.has_code(DiagCode::kBadArity));
}

TEST(SemaTest, PrintfIsVariadic) {
  parse_ok("int main() { printf(\"%d %d %d\", 1, 2, 3); return 0; }");
}

TEST(SemaTest, BreakOutsideLoopFails) {
  const auto diags = parse_expecting_errors("int main() { break; }");
  EXPECT_TRUE(diags.has_code(DiagCode::kInvalidBreak));
}

TEST(SemaTest, ContinueInsideLoopIsFine) {
  parse_ok("int main() { for (int i = 0; i < 3; i++) { continue; } return 0; }");
}

TEST(SemaTest, MissingMainFails) {
  const auto diags = parse_expecting_errors("int helper() { return 1; }");
  EXPECT_TRUE(diags.has_code(DiagCode::kMissingMain));
}

TEST(SemaTest, AssignToLiteralFails) {
  const auto diags = parse_expecting_errors("int main() { 3 = 4; return 0; }");
  EXPECT_TRUE(diags.has_code(DiagCode::kTypeMismatch));
}

TEST(SemaTest, DerefOfNonPointerFails) {
  const auto diags =
      parse_expecting_errors("int main() { int x = 0; return *x; }");
  EXPECT_TRUE(diags.has_code(DiagCode::kTypeMismatch));
}

TEST(SemaTest, IndexOfNonArrayFails) {
  const auto diags =
      parse_expecting_errors("int main() { int x = 0; return x[1]; }");
  EXPECT_TRUE(diags.has_code(DiagCode::kTypeMismatch));
}

TEST(SemaTest, NegativeArrayExtentFails) {
  const auto diags =
      parse_expecting_errors("int main() { int a[-4]; return 0; }");
  EXPECT_TRUE(diags.has_code(DiagCode::kTypeMismatch));
}

TEST(SemaTest, ConstantExtentFolded) {
  const auto program = parse_ok("int main() { int a[4 * 8]; a[0] = 1; return 0; }");
  const Stmt* body = program.functions[0].body.get();
  EXPECT_EQ(body->body[0]->decls[0].type.array_extent, 32);
}

TEST(SemaTest, RuntimeSizedArrayAllowed) {
  parse_ok("int main() { int n = 5; double a[n]; a[0] = 1.0; return 0; }");
}

TEST(SemaTest, BuiltinConstantsResolve) {
  parse_ok("int main() { return acc_get_num_devices(acc_device_default) > 0 "
           "? 0 : 1; }");
}

TEST(SemaTest, InitializerSeesOuterNotSelf) {
  // `int x = x;` must report x undeclared (C-like strictness in the subset).
  const auto diags =
      parse_expecting_errors("int main() { int fresh = fresh; return 0; }");
  EXPECT_TRUE(diags.has_code(DiagCode::kUndeclaredIdentifier));
}

TEST(SemaTest, ErrorLimitStopsCascade) {
  // A file of garbage must not produce unbounded diagnostics.
  std::string garbage = "int main() {\n";
  for (int i = 0; i < 200; ++i) garbage += "  ] ) } ; @ ;\n";
  garbage += "}\n";
  DiagnosticEngine diags;
  analyze_source(garbage, diags);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_LE(diags.error_count(), 30u);
}

}  // namespace
}  // namespace llm4vv::frontend
