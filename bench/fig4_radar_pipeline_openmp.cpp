// Reproduces Figure 4: radar plot of the two validation pipelines'
// per-category accuracy on OpenMP.
#include <cstdio>

#include "core/llm4vv.hpp"

int main() {
  using namespace llm4vv;
  const auto outcome = core::run_part_two(frontend::Flavor::kOpenMP);
  std::puts("\n== Figure 4: Validation Pipeline Results for OpenMP ==");
  std::fputs(metrics::render_radar(
                 {metrics::radar_axes(outcome.pipeline1_report),
                  metrics::radar_axes(outcome.pipeline2_report)},
                 {"Pipeline 1 (agent-direct)", "Pipeline 2 (agent-indirect)"},
                 metrics::radar_axis_labels(frontend::Flavor::kOpenMP))
                 .c_str(),
             stdout);
  std::puts(
      "Paper shape: near-identical pipelines across all axes; unlike "
      "OpenACC, the Test-logic axis stays high (~92%).");
  return 0;
}
