// Reproduces Table VII: Agent-Based LLMJ Results for OpenACC.
//
// The same Part Two run as Table IV, but scoring the two agent-based
// judges *alone* (nothing filtered; every file compiled, executed, and
// judged, with tool outputs quoted in the prompt).
#include <cstdio>

#include "core/llm4vv.hpp"

int main() {
  using namespace llm4vv;
  const auto outcome = core::run_part_two(frontend::Flavor::kOpenACC);
  std::fputs(core::render_issue_table2(
                 "Table VII: Agent-Based LLMJ Results for OpenACC",
                 frontend::Flavor::kOpenACC,
                 "LLMJ 1", core::table7_agent_acc(1), outcome.llmj1_report,
                 "LLMJ 2", core::table7_agent_acc(2), outcome.llmj2_report)
                 .c_str(),
             stdout);
  return 0;
}
