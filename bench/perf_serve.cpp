// Serving-layer bench: closed-loop latency/throughput through a real
// loopback socket (llm4vv-serve's engine in-process), plus the
// multi-tenant fairness sweep the serving PR gates on.
//
// The judge cache is disabled and the adaptive batcher is given a small
// coalescing window so queueing is real: every submit pays a simulated
// forward pass, and the weighted fair scheduler actually arbitrates
// between tenants instead of replaying memoized verdicts.
//
//   BM_ServeClosedLoop/clients:N - N concurrent connections, each running
//       submit -> wait -> submit; counters report client-observed p50/p99
//       latency and jobs/s.
//   BM_ServeFairness/tenants:3   - three tenants pipeline a burst at one
//       worker; counters report per-tenant completions and the max/min
//       fairness ratio the gate in run_benchmarks.sh checks (< 2.5, no
//       tenant starved).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/llm4vv.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace {

using namespace llm4vv;

std::vector<frontend::SourceFile> job_pool(std::size_t count) {
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = count;
  gen.seed = 91;
  const auto suite = corpus::generate_suite(gen);
  std::vector<frontend::SourceFile> files;
  files.reserve(suite.cases.size());
  for (const auto& test_case : suite.cases) files.push_back(test_case.file);
  return files;
}

std::unique_ptr<serve::Server> make_server(serve::ServerConfig config) {
  llm::BatcherConfig batcher;
  batcher.max_batch = 4;
  batcher.window_us = 300;
  auto client = core::make_simulated_client(2, batcher);
  judge::JudgeCacheConfig cache;
  cache.enabled = false;  // every submit pays a real simulated forward pass
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect, cache);
  auto server = std::make_unique<serve::Server>(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), judge, config);
  server->start();
  return server;
}

std::uint64_t percentile_us(std::vector<std::uint64_t> sorted_copy,
                            double fraction) {
  if (sorted_copy.empty()) return 0;
  std::sort(sorted_copy.begin(), sorted_copy.end());
  const auto rank = static_cast<std::size_t>(
      fraction * static_cast<double>(sorted_copy.size() - 1) + 0.5);
  return sorted_copy[std::min(rank, sorted_copy.size() - 1)];
}

void BM_ServeClosedLoop(benchmark::State& state) {
  const auto client_count = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kJobsPerClient = 6;
  const auto files = job_pool(8);

  serve::ServerConfig config;
  config.workers = 2;
  config.job_batch = 2;
  const auto server = make_server(config);

  std::vector<std::uint64_t> latencies_us;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    std::vector<std::thread> clients;
    std::vector<std::vector<std::uint64_t>> per_client(client_count);
    clients.reserve(client_count);
    for (std::size_t c = 0; c < client_count; ++c) {
      clients.emplace_back([&, c] {
        serve::Client wire;
        if (!wire.connect("127.0.0.1", server->port(),
                          "bench-" + std::to_string(c))) {
          return;
        }
        for (std::size_t j = 0; j < kJobsPerClient; ++j) {
          const auto start = support::now_us();
          const auto response = wire.submit_and_wait(
              j + 1, files[(c * kJobsPerClient + j) % files.size()]);
          if (response.has_value() &&
              response->type == serve::ResponseType::kVerdict) {
            per_client[c].push_back(support::now_us() - start);
          }
        }
      });
    }
    for (auto& thread : clients) thread.join();
    for (const auto& lat : per_client) {
      completed += lat.size();
      latencies_us.insert(latencies_us.end(), lat.begin(), lat.end());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * client_count * kJobsPerClient));
  state.counters["completed_per_run"] =
      static_cast<double>(completed) / static_cast<double>(state.iterations());
  state.counters["p50_latency_us"] =
      static_cast<double>(percentile_us(latencies_us, 0.50));
  state.counters["p99_latency_us"] =
      static_cast<double>(percentile_us(latencies_us, 0.99));
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(completed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeClosedLoop)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()  // the work happens on server/client threads, not here
    ->ArgName("clients");

void BM_ServeFairness(benchmark::State& state) {
  const auto tenant_count = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kJobsPerTenant = 8;
  const auto files = job_pool(8);

  // One worker and a tiny batch keep a genuine backlog in the fair
  // scheduler while every tenant's burst is queued at once — the sweep
  // measures arbitration, not idle capacity.
  serve::ServerConfig config;
  config.workers = 1;
  config.job_batch = 2;
  const auto server = make_server(config);

  std::uint64_t min_completed = kJobsPerTenant;
  std::uint64_t max_completed = 0;
  std::uint64_t total_completed = 0;
  for (auto _ : state) {
    std::vector<std::thread> tenants;
    std::vector<std::uint64_t> completed(tenant_count, 0);
    tenants.reserve(tenant_count);
    for (std::size_t t = 0; t < tenant_count; ++t) {
      tenants.emplace_back([&, t] {
        serve::Client wire;
        if (!wire.connect("127.0.0.1", server->port(),
                          "tenant-" + std::to_string(t))) {
          return;
        }
        // Pipeline the whole burst, then reap terminals: the scheduler
        // sees all tenants' backlogs simultaneously.
        for (std::size_t j = 0; j < kJobsPerTenant; ++j) {
          if (!wire.send_submit(j + 1, files[j % files.size()])) return;
        }
        for (std::size_t j = 0; j < kJobsPerTenant; ++j) {
          const auto response = wire.next_response(30000);
          if (!response.has_value()) return;
          if (response->type == serve::ResponseType::kVerdict) ++completed[t];
        }
      });
    }
    for (auto& thread : tenants) thread.join();
    for (const std::uint64_t done : completed) {
      min_completed = std::min(min_completed, done);
      max_completed = std::max(max_completed, done);
      total_completed += done;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * tenant_count * kJobsPerTenant));
  state.counters["tenant_min_completed"] =
      static_cast<double>(min_completed);
  state.counters["tenant_max_completed"] =
      static_cast<double>(max_completed);
  state.counters["fairness_ratio"] =
      min_completed == 0
          ? 0.0
          : static_cast<double>(max_completed) /
                static_cast<double>(min_completed);
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(total_completed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeFairness)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->ArgName("tenants");

}  // namespace

BENCHMARK_MAIN();
