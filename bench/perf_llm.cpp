// Judge-stage microbenchmarks: simulated model call cost, prompt-size
// scaling, and client-side concurrency behaviour. The `sim_latency`
// counters show why the LLM stage dominates the pipeline's (virtual) cost.
#include <benchmark/benchmark.h>

#include <thread>

#include "core/llm4vv.hpp"
#include "judge/prompt.hpp"
#include "llm/tokenizer.hpp"

namespace {

using namespace llm4vv;

frontend::SourceFile sample_file() {
  const auto tc = corpus::generate_one("saxpy_offload",
                                       frontend::Flavor::kOpenACC,
                                       frontend::Language::kC, 99);
  return tc.file;
}

void BM_SimulatedJudgeCall(benchmark::State& state) {
  const llm::SimulatedCoderModel model;
  const auto file = sample_file();
  const std::string prompt = judge::direct_analysis_prompt(file);
  double sim_latency = 0.0;
  for (auto _ : state) {
    const auto completion = model.generate(prompt, {});
    sim_latency += completion.latency_seconds;
    benchmark::DoNotOptimize(completion.text.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["sim_latency_s"] =
      sim_latency / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SimulatedJudgeCall)->Unit(benchmark::kMicrosecond);

void BM_PromptSizeScaling(benchmark::State& state) {
  // Pad the code with comment lines to scale the prompt.
  const llm::SimulatedCoderModel model;
  auto file = sample_file();
  const auto pad_lines = static_cast<std::size_t>(state.range(0));
  std::string padding;
  for (std::size_t i = 0; i < pad_lines; ++i) {
    padding += "// padding comment line to grow the prompt for scaling\n";
  }
  file.content = padding + file.content;
  const std::string prompt = judge::direct_analysis_prompt(file);
  for (auto _ : state) {
    const auto completion = model.generate(prompt, {});
    benchmark::DoNotOptimize(completion.prompt_tokens);
  }
  state.counters["prompt_tokens"] = static_cast<double>(
      llm::default_tokenizer().count_tokens(prompt));
}
BENCHMARK(BM_PromptSizeScaling)
    ->Arg(0)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_ClientConcurrency(benchmark::State& state) {
  // Throughput of the inference facade under contention with N callers
  // against a capacity-4 endpoint.
  const auto callers = static_cast<std::size_t>(state.range(0));
  const auto file = sample_file();
  const std::string prompt = judge::direct_analysis_prompt(file);
  for (auto _ : state) {
    auto client = core::make_simulated_client(4);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < callers; ++t) {
      threads.emplace_back([&client, &prompt] {
        for (int i = 0; i < 8; ++i) {
          auto completion = client->complete(prompt);
          benchmark::DoNotOptimize(completion.completion_tokens);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * callers * 8));
}
BENCHMARK(BM_ClientConcurrency)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
