// Tokenizer microbenchmarks: encode/count throughput on corpus files and
// judge prompts, plus the compression ratio the fragment vocabulary buys
// (prompt-token accounting drives the simulated GPU-cost model).
#include <benchmark/benchmark.h>

#include "core/llm4vv.hpp"
#include "judge/prompt.hpp"
#include "llm/tokenizer.hpp"

namespace {

using namespace llm4vv;

std::string sample_text() {
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = 16;
  gen.seed = 88;
  std::string text;
  for (const auto& tc : corpus::generate_suite(gen).cases) {
    text += tc.file.content;
  }
  return text;
}

void BM_TokenizerEncode(benchmark::State& state) {
  const auto& tokenizer = llm::default_tokenizer();
  const std::string text = sample_text();
  std::size_t tokens = 0;
  for (auto _ : state) {
    const auto ids = tokenizer.encode(text);
    tokens = ids.size();
    benchmark::DoNotOptimize(ids.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
  state.counters["chars_per_token"] =
      static_cast<double>(text.size()) / static_cast<double>(tokens);
}
BENCHMARK(BM_TokenizerEncode)->Unit(benchmark::kMicrosecond);

void BM_TokenizerEncodeNaive(benchmark::State& state) {
  // The pre-trie reference implementation (per-position longest-first
  // bucket scan), compiled in-tree so bytes/sec here vs BM_TokenizerEncode
  // is an apples-to-apples speedup ratio for the trie.
  const auto& tokenizer = llm::default_tokenizer();
  const std::string text = sample_text();
  for (auto _ : state) {
    const auto ids = tokenizer.encode_reference(text);
    benchmark::DoNotOptimize(ids.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_TokenizerEncodeNaive)->Unit(benchmark::kMicrosecond);

void BM_TokenizerEncodeInto(benchmark::State& state) {
  // Zero-allocation path used by the judge stack: one reused id buffer.
  const auto& tokenizer = llm::default_tokenizer();
  const std::string text = sample_text();
  std::vector<std::int32_t> ids;
  for (auto _ : state) {
    tokenizer.encode_into(text, ids);
    benchmark::DoNotOptimize(ids.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_TokenizerEncodeInto)->Unit(benchmark::kMicrosecond);

void BM_TokenizerCount(benchmark::State& state) {
  const auto& tokenizer = llm::default_tokenizer();
  const auto tc = corpus::generate_one("saxpy_offload",
                                       frontend::Flavor::kOpenACC,
                                       frontend::Language::kC, 3);
  const std::string prompt = judge::direct_analysis_prompt(tc.file);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.count_tokens(prompt));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * prompt.size()));
}
BENCHMARK(BM_TokenizerCount)->Unit(benchmark::kMicrosecond);

void BM_TokenizerRoundTrip(benchmark::State& state) {
  const auto& tokenizer = llm::default_tokenizer();
  const std::string text = sample_text().substr(0, 4096);
  for (auto _ : state) {
    const auto ids = tokenizer.encode(text);
    const auto back = tokenizer.decode(ids);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_TokenizerRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
