// Compile-stage microbenchmarks: front-end throughput on generated V&V
// files. Establishes that the compile stage is orders of magnitude cheaper
// than the LLM stage — the premise behind putting it first in the pipeline.
#include <benchmark/benchmark.h>

#include "core/llm4vv.hpp"
#include "directive/validator.hpp"

namespace {

using namespace llm4vv;

std::vector<frontend::SourceFile> sample_files(frontend::Flavor flavor) {
  corpus::GeneratorConfig gen;
  gen.flavor = flavor;
  gen.count = 64;
  gen.seed = 4242;
  std::vector<frontend::SourceFile> files;
  for (auto& tc : corpus::generate_suite(gen).cases) {
    files.push_back(std::move(tc.file));
  }
  return files;
}

void BM_CompileACC(benchmark::State& state) {
  const auto files = sample_files(frontend::Flavor::kOpenACC);
  const toolchain::CompilerDriver driver(toolchain::nvc_persona());
  std::size_t bytes = 0;
  for (auto _ : state) {
    for (const auto& file : files) {
      auto result = driver.compile(file);
      benchmark::DoNotOptimize(result.success);
      bytes += file.content.size();
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * files.size()));
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CompileACC)->Unit(benchmark::kMillisecond);

void BM_CompileOMP(benchmark::State& state) {
  const auto files = sample_files(frontend::Flavor::kOpenMP);
  const toolchain::CompilerDriver driver(toolchain::clang_persona());
  for (auto _ : state) {
    for (const auto& file : files) {
      auto result = driver.compile(file);
      benchmark::DoNotOptimize(result.success);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * files.size()));
}
BENCHMARK(BM_CompileOMP)->Unit(benchmark::kMillisecond);

void BM_DirectiveValidation(benchmark::State& state) {
  // Directive parsing + validation in isolation.
  const std::string pragma =
      "#pragma acc parallel loop reduction(+:sum) copyin(a[0:n], b[0:n]) "
      "copyout(c[0:n]) num_gangs(8) vector_length(128) async(2)";
  directive::ValidatorOptions options;
  options.flavor = frontend::Flavor::kOpenACC;
  options.supported_version = 33;
  for (auto _ : state) {
    frontend::DiagnosticEngine diags;
    const auto dir = directive::parse_directive(pragma);
    const auto validation =
        directive::validate_directive(dir, options, 1, diags);
    benchmark::DoNotOptimize(validation.ok);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DirectiveValidation);

}  // namespace

BENCHMARK_MAIN();
