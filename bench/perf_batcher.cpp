// Ablation bench for the asynchronous submission API's adaptive batcher:
// with several judge workers submitting through one central ModelClient,
// sweep the wait window T. At T=0 every worker's submission group flushes
// immediately (the PR 2 per-worker-chunk shape); with T>0 the batcher may
// hold a submission up to T microseconds so groups from *different*
// workers coalesce into fuller cross-worker forward passes — higher flush
// occupancy, more prefill amortization, fewer simulated GPU seconds.
//
// run_benchmarks.sh and CI guard two properties of this sweep:
//   1. cross-worker batches actually form: mean flush occupancy at
//      T=200 us strictly exceeds the T=0 (static per-worker) baseline;
//   2. the saving is real: sim-GPU s/run at T=200 us is no worse than at
//      T=0.
#include <benchmark/benchmark.h>

#include "core/llm4vv.hpp"

namespace {

using namespace llm4vv;

/// A probed batch with a controlled invalid share (issues 0-2 fail early).
std::vector<frontend::SourceFile> make_batch(std::size_t size,
                                             int invalid_tenths) {
  const std::size_t invalid =
      size * static_cast<std::size_t>(invalid_tenths) / 10;
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = size + 32;
  gen.seed = 1234;
  const auto suite = corpus::generate_suite(gen);

  probing::ProbingConfig probe;
  probe.issue_counts = {invalid / 3, invalid / 3,
                        invalid - 2 * (invalid / 3), 0, 0, size - invalid};
  probe.seed = 77;
  const auto probed = probing::probe_suite(suite, probe);

  std::vector<frontend::SourceFile> files;
  files.reserve(probed.files.size());
  for (const auto& f : probed.files) files.push_back(f.file);
  return files;
}

void BM_PipelineAdaptiveBatch(benchmark::State& state) {
  const auto window_us = static_cast<std::uint64_t>(state.range(0));
  const auto files = make_batch(120, 3);

  // Cache off so every judged file is a genuine model submission.
  // stage_batch = 1 makes every queue hand-off per-item (no 16-wide
  // bursts), so the judge queue stays shallow and each worker's popped
  // chunk is small: at T=0 the per-worker submission groups are tiny — the
  // sparse-arrival load shape where only a cross-worker batcher can keep
  // forward-pass occupancy up.
  llm::BatcherConfig batcher;
  batcher.max_batch = 8;
  batcher.window_us = window_us;
  auto client = core::make_simulated_client(4, batcher);
  judge::JudgeCacheConfig cache;
  cache.enabled = false;
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect, cache);
  pipeline::PipelineConfig config;
  config.mode = pipeline::PipelineMode::kRecordAll;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 4;
  config.judge_batch_size = 8;
  config.stage_batch = 1;
  const pipeline::ValidationPipeline pipe(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), judge, config);

  double gpu_seconds = 0.0;
  double formed_occupancy_sum = 0.0;
  double chunk_occupancy_sum = 0.0;
  std::uint64_t formed_batches = 0;
  std::uint64_t flush_full = 0;
  std::uint64_t flush_window = 0;
  std::size_t queue_depth_peak = 0;
  for (auto _ : state) {
    const auto result = pipe.run(files);
    gpu_seconds += result.judge_gpu_seconds;
    formed_occupancy_sum += result.judge_batch_occupancy;
    chunk_occupancy_sum +=
        result.judge_batches == 0
            ? 0.0
            : static_cast<double>(result.judge_batched_prompts) /
                  static_cast<double>(result.judge_batches);
    formed_batches += result.judge_formed_batches;
    flush_full += result.judge_flush_full;
    flush_window += result.judge_flush_window;
    queue_depth_peak =
        std::max(queue_depth_peak, result.judge_queue_depth_peak);
    benchmark::DoNotOptimize(result.records.data());
  }
  const auto runs = static_cast<double>(state.iterations());
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * files.size()));
  state.counters["sim_gpu_s_per_run"] = gpu_seconds / runs;
  /// Mean prompts per forward pass the batcher actually formed.
  state.counters["formed_occupancy"] = formed_occupancy_sum / runs;
  /// The old per-worker popped-chunk occupancy, for comparison.
  state.counters["chunk_occupancy"] = chunk_occupancy_sum / runs;
  state.counters["formed_batches_per_run"] =
      static_cast<double>(formed_batches) / runs;
  state.counters["flush_full_per_run"] =
      static_cast<double>(flush_full) / runs;
  state.counters["flush_window_per_run"] =
      static_cast<double>(flush_window) / runs;
  state.counters["queue_depth_peak"] =
      static_cast<double>(queue_depth_peak);
}
BENCHMARK(BM_PipelineAdaptiveBatch)
    ->Arg(0)
    ->Arg(50)
    ->Arg(200)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"window_us"});

}  // namespace

BENCHMARK_MAIN();
