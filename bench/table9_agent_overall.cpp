// Reproduces Table IX: Overall Agent-Based LLMJ Results (accuracy and bias
// of LLMJ 1 and LLMJ 2 on both programming models), plus the paper's
// headline comparison against the non-agent judge of Table III.
#include <cstdio>

#include "core/llm4vv.hpp"

int main() {
  using namespace llm4vv;
  for (const auto flavor :
       {frontend::Flavor::kOpenACC, frontend::Flavor::kOpenMP}) {
    const auto outcome = core::run_part_two(flavor);
    std::fputs(
        core::render_overall_table2(
            std::string("Table IX (") + frontend::flavor_name(flavor) +
                "): Overall Agent-Based LLMJ Results",
            "LLMJ 1", core::table9_overall(flavor, 1), outcome.llmj1_report,
            "LLMJ 2", core::table9_overall(flavor, 2), outcome.llmj2_report)
            .c_str(),
        stdout);
  }
  std::printf(
      "\nHeadline check: both agent-based judges should far exceed the "
      "non-agent judge's overall accuracy (paper: 79.0/74.4%% vs 56.6%% on "
      "OpenACC; 76.0/74.7%% vs 40.6%% on OpenMP).\n");
  return 0;
}
