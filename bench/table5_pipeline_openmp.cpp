// Reproduces Table V: Validation Pipeline Results for OpenMP (296 probed
// files, OpenMP capped at 4.5, clang offloading persona).
#include <cstdio>

#include "core/llm4vv.hpp"

int main() {
  using namespace llm4vv;
  const auto outcome = core::run_part_two(frontend::Flavor::kOpenMP);
  std::fputs(core::render_issue_table2(
                 "Table V: Validation Pipeline Results for OpenMP",
                 frontend::Flavor::kOpenMP,
                 "Pipeline 1", core::table5_pipeline_omp(1),
                 outcome.pipeline1_report,
                 "Pipeline 2", core::table5_pipeline_omp(2),
                 outcome.pipeline2_report)
                 .c_str(),
             stdout);
  return 0;
}
