// Ablation bench for the validation pipeline's two design claims
// (Section III-C):
//   1. early filtering "reduces the number of unnecessary steps" — measured
//      as simulated GPU seconds spent in the LLM stage (kFilterEarly vs
//      kRecordAll) across invalid-share sweeps;
//   2. staged worker pools raise throughput — files/sec vs worker count.
#include <benchmark/benchmark.h>

#include "core/llm4vv.hpp"

namespace {

using namespace llm4vv;

/// A probed batch with a controlled invalid share (issues 0-2 fail early).
std::vector<frontend::SourceFile> make_batch(std::size_t size,
                                             int invalid_tenths) {
  const std::size_t invalid =
      size * static_cast<std::size_t>(invalid_tenths) / 10;
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = size + 32;
  gen.seed = 1234;
  const auto suite = corpus::generate_suite(gen);

  probing::ProbingConfig probe;
  probe.issue_counts = {invalid / 3, invalid / 3,
                        invalid - 2 * (invalid / 3), 0, 0, size - invalid};
  probe.seed = 77;
  const auto probed = probing::probe_suite(suite, probe);

  std::vector<frontend::SourceFile> files;
  files.reserve(probed.files.size());
  for (const auto& f : probed.files) files.push_back(f.file);
  return files;
}

pipeline::ValidationPipeline make_pipeline(pipeline::PipelineMode mode,
                                           std::size_t workers,
                                           bool judge_cache = true,
                                           std::size_t judge_batch = 1) {
  auto client = core::make_simulated_client(workers);
  judge::JudgeCacheConfig cache;
  cache.enabled = judge_cache;
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect, cache);
  pipeline::PipelineConfig config;
  config.mode = mode;
  config.compile_workers = workers;
  config.execute_workers = workers;
  config.judge_workers = workers;
  config.judge_batch_size = judge_batch;
  return pipeline::ValidationPipeline(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), judge, config);
}

void BM_PipelineMode(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? pipeline::PipelineMode::kRecordAll
                                        : pipeline::PipelineMode::kFilterEarly;
  const int invalid_tenths = static_cast<int>(state.range(1));
  const auto files = make_batch(120, invalid_tenths);
  // Judge cache off and batch size pinned to 1: this bench reproduces the
  // paper's early-filter GPU ablation with the paper's one-call-per-file
  // accounting (warm memo cache or batched prefill amortization would hide
  // the per-run cost; filter:0/invalid_tenths:0 must keep reporting the
  // seed-exact 1606.13 sim GPU seconds). Batching is measured by
  // BM_PipelineJudgeBatch; the cache by BM_PipelineJudgeCache.
  const auto pipe = make_pipeline(mode, 2, /*judge_cache=*/false,
                                  /*judge_batch=*/1);
  double gpu_seconds = 0.0;
  std::size_t judged = 0;
  for (auto _ : state) {
    const auto result = pipe.run(files);
    gpu_seconds += result.judge_gpu_seconds;
    judged += result.judge_stage.processed;
    benchmark::DoNotOptimize(result.records.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * files.size()));
  state.counters["sim_gpu_s_per_run"] =
      gpu_seconds / static_cast<double>(state.iterations());
  state.counters["judged_per_run"] =
      static_cast<double>(judged) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_PipelineMode)
    ->ArgsProduct({{0, 1}, {0, 3, 6}})
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"filter", "invalid_tenths"});

void BM_PipelineWorkers(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const auto judge_batch = static_cast<std::size_t>(state.range(1));
  const auto files = make_batch(120, 3);
  const auto pipe = make_pipeline(pipeline::PipelineMode::kFilterEarly,
                                  workers, /*judge_cache=*/true, judge_batch);
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double gpu_seconds = 0.0;
  for (auto _ : state) {
    const auto result = pipe.run(files);
    hits += result.judge_cache_hits;
    misses += result.judge_cache_misses;
    gpu_seconds += result.judge_gpu_seconds;
    benchmark::DoNotOptimize(result.records.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * files.size()));
  state.counters["judge_cache_hits"] =
      static_cast<double>(hits) / static_cast<double>(state.iterations());
  state.counters["judge_cache_misses"] =
      static_cast<double>(misses) / static_cast<double>(state.iterations());
  state.counters["judge_cache_hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  state.counters["sim_gpu_s_per_run"] =
      gpu_seconds / static_cast<double>(state.iterations());
}
BENCHMARK(BM_PipelineWorkers)
    ->ArgsProduct({{1, 2, 4}, {1, 8}})
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"workers", "judge_batch"});

void BM_PipelineJudgeBatch(benchmark::State& state) {
  // The batched-submission ablation: cache off so every judged file is a
  // genuine model submission, many producers feeding one judge worker so
  // the popped chunks fill their batches. judge_batch:1 is the sequential
  // baseline; larger batches amortize prefill across each forward pass and
  // should spend measurably fewer simulated GPU seconds per run.
  const auto judge_batch = static_cast<std::size_t>(state.range(0));
  const auto files = make_batch(120, 3);
  auto client = core::make_simulated_client(4);
  judge::JudgeCacheConfig cache;
  cache.enabled = false;
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect, cache);
  pipeline::PipelineConfig config;
  config.mode = pipeline::PipelineMode::kRecordAll;
  config.compile_workers = 4;
  config.execute_workers = 4;
  config.judge_workers = 1;
  config.judge_batch_size = judge_batch;
  const pipeline::ValidationPipeline pipe(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), judge, config);
  double gpu_seconds = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t batched_prompts = 0;
  for (auto _ : state) {
    const auto result = pipe.run(files);
    gpu_seconds += result.judge_gpu_seconds;
    batches += result.judge_batches;
    batched_prompts += result.judge_batched_prompts;
    benchmark::DoNotOptimize(result.records.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * files.size()));
  state.counters["sim_gpu_s_per_run"] =
      gpu_seconds / static_cast<double>(state.iterations());
  state.counters["judge_batches_per_run"] =
      static_cast<double>(batches) / static_cast<double>(state.iterations());
  state.counters["judge_batch_occupancy"] =
      batches == 0 ? 0.0
                   : static_cast<double>(batched_prompts) /
                         static_cast<double>(batches);
}
BENCHMARK(BM_PipelineJudgeBatch)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"judge_batch"});

void BM_PipelineJudgeCache(benchmark::State& state) {
  // Probed/mutated suites repeat files; `dup` controls how many copies of
  // the batch flow through one run. The judge memoizes on (content hash,
  // style, seed, outcomes), so every copy after the first is a cache hit
  // that skips prompt assembly and the simulated model call.
  const auto dup = static_cast<std::size_t>(state.range(0));
  const auto base = make_batch(40, 3);
  std::vector<frontend::SourceFile> files;
  files.reserve(base.size() * dup);
  for (std::size_t d = 0; d < dup; ++d) {
    files.insert(files.end(), base.begin(), base.end());
  }
  auto client = core::make_simulated_client(2);
  // Non-const handle: clear_cache() is a genuine mutation now; the pipeline
  // still sees the judge through its const interface.
  auto judge = std::make_shared<judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect);
  pipeline::PipelineConfig config;
  config.mode = pipeline::PipelineMode::kRecordAll;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 2;
  const pipeline::ValidationPipeline pipe(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), judge, config);
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (auto _ : state) {
    state.PauseTiming();
    judge->clear_cache();  // measure within-run hits only
    state.ResumeTiming();
    const auto result = pipe.run(files);
    hits += result.judge_cache_hits;
    misses += result.judge_cache_misses;
    benchmark::DoNotOptimize(result.records.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * files.size()));
  state.counters["judge_cache_hit_rate"] =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
}
BENCHMARK(BM_PipelineJudgeCache)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"dup"});

}  // namespace

BENCHMARK_MAIN();
