// Reproduces Table VIII: Agent-Based LLMJ Results for OpenMP.
#include <cstdio>

#include "core/llm4vv.hpp"

int main() {
  using namespace llm4vv;
  const auto outcome = core::run_part_two(frontend::Flavor::kOpenMP);
  std::fputs(core::render_issue_table2(
                 "Table VIII: Agent-Based LLMJ Results for OpenMP",
                 frontend::Flavor::kOpenMP,
                 "LLMJ 1", core::table8_agent_omp(1), outcome.llmj1_report,
                 "LLMJ 2", core::table8_agent_omp(2), outcome.llmj2_report)
                 .c_str(),
             stdout);
  return 0;
}
