// Reproduces Figure 6: radar plot of all three LLMJs on OpenMP.
#include <cstdio>

#include "core/llm4vv.hpp"

int main() {
  using namespace llm4vv;
  const auto part_one = core::run_part_one(frontend::Flavor::kOpenMP);
  const auto part_two = core::run_part_two(frontend::Flavor::kOpenMP);
  std::puts("\n== Figure 6: LLMJ Results for OpenMP ==");
  std::fputs(metrics::render_radar(
                 {metrics::radar_axes(part_one.report),
                  metrics::radar_axes(part_two.llmj1_report),
                  metrics::radar_axes(part_two.llmj2_report)},
                 {"non-agent LLMJ", "LLMJ 1 (agent-direct)",
                  "LLMJ 2 (agent-indirect)"},
                 metrics::radar_axis_labels(frontend::Flavor::kOpenMP))
                 .c_str(),
             stdout);
  std::puts(
      "Paper shape: agent judges win everywhere except improper-syntax "
      "recognition (the non-agent judge's 74% beats both) and the "
      "non-agent judge is nearly blind on the Non-OpenMP axis (4%).");
  return 0;
}
