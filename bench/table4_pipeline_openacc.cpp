// Reproduces Table IV: Validation Pipeline Results for OpenACC.
//
// Part Two: 1782 probed OpenACC files flow through the compile -> execute
// -> agent-LLMJ pipeline in record-all mode; the pipeline verdict is
// "compiled && exited 0 && judged valid". Pipeline 1 uses the agent-direct
// prompt (LLMJ 1), Pipeline 2 the agent-indirect prompt (LLMJ 2).
#include <cstdio>

#include "core/llm4vv.hpp"

int main() {
  using namespace llm4vv;
  const auto outcome = core::run_part_two(frontend::Flavor::kOpenACC);
  std::fputs(core::render_issue_table2(
                 "Table IV: Validation Pipeline Results for OpenACC",
                 frontend::Flavor::kOpenACC,
                 "Pipeline 1", core::table4_pipeline_acc(1),
                 outcome.pipeline1_report,
                 "Pipeline 2", core::table4_pipeline_acc(2),
                 outcome.pipeline2_report)
                 .c_str(),
             stdout);
  std::printf(
      "compile stage: %zu processed / %zu rejected; execute stage: %zu / "
      "%zu; judge stage: %zu files, %.1f simulated GPU seconds\n",
      outcome.pipeline_run1.compile_stage.processed,
      outcome.pipeline_run1.compile_stage.rejected,
      outcome.pipeline_run1.execute_stage.processed,
      outcome.pipeline_run1.execute_stage.rejected,
      outcome.pipeline_run1.judge_stage.processed,
      outcome.pipeline_run1.judge_gpu_seconds);
  return 0;
}
