// Observability overhead bench (docs/OBSERVABILITY.md's budget):
//   BM_PipelineTraced/obs:0  instrumented pipeline, registry and tracer
//                            detached — every metric/span site is a null
//                            branch. This is the configuration everyone
//                            pays.
//   BM_PipelineTraced/obs:1  metrics registry attached (sharded counter
//                            cells on the hot path, probes at scrape).
//   BM_PipelineTraced/obs:2  registry + span tracer attached — the full
//                            tracing-on cost, recorded in BENCH_obs.json.
// Plus microbenches for the primitives: a sharded counter inc, the null
// (detached) handle branch, and one full ObsSpan record. The <2%
// tracing-off budget is gated through the microbench ratio (detached inc
// must stay well under an attached one — the null early-out is the whole
// disabled-cost story) and noise-free invariants (sim_gpu_s_cold equal
// across modes), not through wall-clock deltas between the separately
// timed pipeline modes, which scheduler noise dominates at this scale —
// see run_benchmarks.sh.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "core/llm4vv.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace {

using namespace llm4vv;

std::vector<frontend::SourceFile> make_batch(std::size_t size,
                                             int invalid_tenths) {
  const std::size_t invalid =
      size * static_cast<std::size_t>(invalid_tenths) / 10;
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = size + 32;
  gen.seed = 1234;
  const auto suite = corpus::generate_suite(gen);

  probing::ProbingConfig probe;
  probe.issue_counts = {invalid / 3, invalid / 3,
                        invalid - 2 * (invalid / 3), 0, 0, size - invalid};
  probe.seed = 77;
  const auto probed = probing::probe_suite(suite, probe);

  std::vector<frontend::SourceFile> files;
  files.reserve(probed.files.size());
  for (const auto& f : probed.files) files.push_back(f.file);
  return files;
}

void BM_PipelineTraced(benchmark::State& state) {
  const int obs_mode = static_cast<int>(state.range(0));
  const auto files = make_batch(120, 3);
  auto client = core::make_simulated_client(2);
  // Judge cache on: after the first iteration the model cost collapses and
  // wall time is dominated by the stages the instrumentation actually sits
  // in (compile, execute, queues, cache-hit judging) — the worst case for
  // relative overhead, which is what the gate must bound.
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect);
  pipeline::PipelineConfig config;
  config.mode = pipeline::PipelineMode::kRecordAll;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 2;
  config.judge_batch_size = 8;
  std::shared_ptr<obs::Registry> registry;
  std::shared_ptr<obs::Tracer> tracer;
  if (obs_mode >= 1) {
    registry = std::make_shared<obs::Registry>();
    config.registry = registry;
  }
  if (obs_mode >= 2) {
    tracer = std::make_shared<obs::Tracer>();
    config.trace = tracer;
    client->set_tracer(tracer);
  }
  const pipeline::ValidationPipeline pipe(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), judge, config);
  double cold_gpu_seconds = 0.0;
  std::size_t metric_samples = 0;
  for (auto _ : state) {
    const auto result = pipe.run(files);
    // Only the cold run pays the model (the judge memo cache serves warm
    // iterations), so keep the max as the corpus fingerprint.
    cold_gpu_seconds = std::max(cold_gpu_seconds, result.judge_gpu_seconds);
    metric_samples = result.metrics.size();
    benchmark::DoNotOptimize(result.records.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * files.size()));
  state.counters["sim_gpu_s_cold"] = cold_gpu_seconds;
  state.counters["metric_samples"] = static_cast<double>(metric_samples);
  if (tracer != nullptr) {
    // Rings are bounded; count drops so spans_per_run stays honest even if
    // a long full run wraps them.
    state.counters["spans_per_run"] =
        static_cast<double>(tracer->collect().size() + tracer->dropped()) /
        static_cast<double>(state.iterations());
  }
}
BENCHMARK(BM_PipelineTraced)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"obs"});

void BM_CounterInc(benchmark::State& state) {
  obs::Registry registry;
  const obs::Counter counter = registry.counter("bench.hot");
  for (auto _ : state) {
    counter.inc();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncDetached(benchmark::State& state) {
  const obs::Counter counter;  // null handle: the disabled-path branch
  for (auto _ : state) {
    counter.inc();
    benchmark::DoNotOptimize(&counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CounterIncDetached);

void BM_SpanRecord(benchmark::State& state) {
  obs::Tracer tracer;
  std::uint64_t trace_id = 0;
  for (auto _ : state) {
    obs::ObsSpan span(&tracer, obs::SpanKind::kExecute, ++trace_id);
    span.set_arg(1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["dropped"] = static_cast<double>(tracer.dropped());
}
BENCHMARK(BM_SpanRecord);

}  // namespace

BENCHMARK_MAIN();
