// Reproduces Table III: LLMJ Overall Negative Probing Results —
// total counts, mistakes, overall accuracy, and bias for the non-agent
// judge on both programming models.
#include <cstdio>

#include "core/llm4vv.hpp"

int main() {
  using namespace llm4vv;
  for (const auto flavor :
       {frontend::Flavor::kOpenACC, frontend::Flavor::kOpenMP}) {
    const auto outcome = core::run_part_one(flavor);
    std::fputs(
        core::render_overall_table(
            std::string("Table III (") + frontend::flavor_name(flavor) +
                "): LLMJ Overall Negative Probing Results",
            "LLMJ", core::table3_overall(flavor), outcome.report)
            .c_str(),
        stdout);
  }
  return 0;
}
