// Reproduces Table II: LLMJ Negative Probing Results for OpenMP.
//
// The Part One OpenMP suite (431 files, C only — "due to time constraints"
// in the paper) judged by the non-agent direct-analysis prompt.
#include <cstdio>

#include "core/llm4vv.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace llm4vv;
  const support::CliArgs args(argc, argv);
  core::ExperimentOptions options;
  options.corpus_seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(options.corpus_seed)));

  const auto outcome = core::run_part_one(frontend::Flavor::kOpenMP, options);
  std::fputs(core::render_issue_table(
                 "Table II: LLMJ Negative Probing Results for OpenMP",
                 frontend::Flavor::kOpenMP, core::table2_llmj_omp(),
                 outcome.report)
                 .c_str(),
             stdout);
  return 0;
}
