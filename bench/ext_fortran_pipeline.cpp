// Extension experiment (the paper's stated future work): "we will
// incorporate fortran code into our testing to ensure more comprehensive
// data collection and probing."
//
// This bench runs a Part Two-style experiment on an OpenACC suite with a
// 30% Fortran share — something the paper could not yet report — and
// prints the per-issue pipeline/judge accuracies split by language, so the
// C/C++-vs-Fortran deltas are visible.
#include <cstdio>

#include "core/llm4vv.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

int main() {
  using namespace llm4vv;

  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = 700;
  gen.seed = 0xF047AACULL;
  gen.fortran_share = 0.30;
  gen.cpp_share = 0.25;
  const auto suite = corpus::generate_suite(gen);

  probing::ProbingConfig probe = probing::part_two_acc_config();
  probe.issue_counts = {90, 50, 50, 50, 60, 300};  // 600-file experiment
  const auto probed = probing::probe_suite(suite, probe);

  auto client = core::make_simulated_client(2);
  auto llmj = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect);
  pipeline::PipelineConfig config;
  config.mode = pipeline::PipelineMode::kRecordAll;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 2;
  const pipeline::ValidationPipeline pipe(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), llmj, config);

  std::vector<frontend::SourceFile> files;
  for (const auto& pf : probed.files) files.push_back(pf.file);
  const auto result = pipe.run(files);

  const auto report_for = [&](bool fortran) {
    std::vector<metrics::JudgmentRecord> judgments;
    for (std::size_t i = 0; i < probed.files.size(); ++i) {
      const bool is_fortran = probed.files[i].file.language ==
                              frontend::Language::kFortran;
      if (is_fortran != fortran) continue;
      judgments.push_back(metrics::JudgmentRecord{
          probed.files[i].issue, result.records[i].pipeline_says_valid});
    }
    return metrics::evaluate(judgments);
  };

  const auto c_report = report_for(false);
  const auto f_report = report_for(true);

  std::puts("\n== Extension: Part Two pipeline with a 30% Fortran share "
            "(paper future work) ==");
  support::TextTable table(
      {"Issue Type", "C/C++ n", "C/C++ acc", "Fortran n", "Fortran acc"});
  for (int id = 0; id <= 5; ++id) {
    const auto& c_row = c_report.per_issue[static_cast<std::size_t>(id)];
    const auto& f_row = f_report.per_issue[static_cast<std::size_t>(id)];
    table.add_row({
        probing::issue_row_label(static_cast<probing::IssueType>(id),
                                 frontend::Flavor::kOpenACC),
        std::to_string(c_row.count),
        support::format_percent(c_row.accuracy()),
        std::to_string(f_row.count),
        support::format_percent(f_row.accuracy()),
    });
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "overall: C/C++ %.2f%% (bias %+.3f) vs Fortran %.2f%% (bias %+.3f)\n",
      c_report.overall_accuracy * 100.0, c_report.bias,
      f_report.overall_accuracy * 100.0, f_report.bias);
  std::puts(
      "Finding: the pipeline's mechanics transfer to Fortran — structural "
      "mutations are caught by the front-end, deleted allocate() calls trap "
      "at run time, and the trailing-block class stays the weak spot.");
  return 0;
}
