// Reproduces Figure 5: radar plot of all three LLMJs on OpenACC — the
// Part One non-agent judge vs the two agent-based judges of Part Two.
#include <cstdio>

#include "core/llm4vv.hpp"

int main() {
  using namespace llm4vv;
  const auto part_one = core::run_part_one(frontend::Flavor::kOpenACC);
  const auto part_two = core::run_part_two(frontend::Flavor::kOpenACC);
  std::puts("\n== Figure 5: LLMJ Results for OpenACC ==");
  std::fputs(metrics::render_radar(
                 {metrics::radar_axes(part_one.report),
                  metrics::radar_axes(part_two.llmj1_report),
                  metrics::radar_axes(part_two.llmj2_report)},
                 {"non-agent LLMJ", "LLMJ 1 (agent-direct)",
                  "LLMJ 2 (agent-indirect)"},
                 metrics::radar_axis_labels(frontend::Flavor::kOpenACC))
                 .c_str(),
             stdout);
  std::puts(
      "Paper shape: the agent judges dominate the non-agent judge on every "
      "axis except valid-test recognition (where the non-agent judge beats "
      "LLMJ 2) and the Test-logic axis stays low for all three.");
  return 0;
}
