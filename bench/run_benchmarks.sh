#!/usr/bin/env bash
# Runs the perf_* Google Benchmark binaries and records their JSON output
# next to this script, so every PR leaves a perf trajectory:
#   bench/BENCH_tokenizer.json  - trie vs naive encode, count, roundtrip
#   bench/BENCH_pipeline.json   - mode/worker sweeps + judge-cache counters
#   bench/BENCH_batcher.json    - adaptive-batcher wait-window sweep
#                                 (cross-worker flush occupancy vs T)
#   bench/BENCH_cache.json      - persistent warm-start collapse (perf_cache
#                                 runs TWICE against one cache file; the
#                                 recorded JSON is the second, warm run)
#   bench/BENCH_vm.json         - VM dispatch-core sweep + sharded-vs-mutex
#                                 execute-queue scaling (see docs/BENCHMARKS.md)
#   bench/BENCH_faults.json     - resilience sweep: goodput/success rate at
#                                 5%/20% seeded transient faults with retries
#                                 off/on, plus p99 added latency per request
#   bench/BENCH_obs.json        - observability overhead: detached vs
#                                 registry vs registry+tracer pipeline wall
#                                 time, plus counter-inc / span-record
#                                 microbenches (see docs/OBSERVABILITY.md)
#   bench/BENCH_serve.json      - serving layer: closed-loop p50/p99 latency
#                                 and jobs/s over loopback at 1/2/4 clients,
#                                 plus the 3-tenant fairness sweep (see
#                                 docs/SERVING.md)
#
# Usage: bench/run_benchmarks.sh [build-dir]
#   BENCH_MIN_TIME=0.01s bench/run_benchmarks.sh   # quick smoke run
set -euo pipefail

script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
repo_root="$(dirname "${script_dir}")"
build_dir="${1:-${repo_root}/build}"
# benchmark <1.8 rejects the "0.01s" suffix form; strip it for portability.
min_time="${BENCH_MIN_TIME:-}"
min_time="${min_time%s}"

if [[ ! -d "${build_dir}" ]]; then
  echo "error: build directory '${build_dir}' not found." >&2
  echo "Run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

bench_args=(--benchmark_repetitions=1)
if [[ -n "${min_time}" ]]; then
  bench_args+=("--benchmark_min_time=${min_time}")
fi

run_bench() {
  local name="$1" out="$2"
  local binary="${build_dir}/${name}"
  if [[ ! -x "${binary}" ]]; then
    echo "error: ${binary} missing (benchmarks disabled at configure time?)" >&2
    exit 1
  fi
  echo "== ${name} -> ${out}"
  "${binary}" "${bench_args[@]}" \
    --benchmark_format=console \
    --benchmark_out="${out}" \
    --benchmark_out_format=json
}

run_bench perf_tokenizer "${script_dir}/BENCH_tokenizer.json"
run_bench perf_pipeline "${script_dir}/BENCH_pipeline.json"
run_bench perf_batcher "${script_dir}/BENCH_batcher.json"
run_bench perf_vm "${script_dir}/BENCH_vm.json"
run_bench perf_faults "${script_dir}/BENCH_faults.json"
run_bench perf_obs "${script_dir}/BENCH_obs.json"
run_bench perf_serve "${script_dir}/BENCH_serve.json"

# Warm-start persistence check: run perf_cache twice against ONE cache
# file. The first invocation starts cold (the file is deleted here) and
# saves its verdicts; the second must report a non-zero cross-run persisted
# hit rate — if it doesn't, persistence silently stopped working and the
# script fails. BENCH_cache.json keeps the second (warm) run.
warm_cache_file="${script_dir}/.warm_start_cache.jsonl"
rm -f "${warm_cache_file}"
LLM4VV_BENCH_CACHE_FILE="${warm_cache_file}" \
  run_bench perf_cache "${script_dir}/BENCH_cache.json"
LLM4VV_BENCH_CACHE_FILE="${warm_cache_file}" \
  run_bench perf_cache "${script_dir}/BENCH_cache.json"
rm -f "${warm_cache_file}"

# Headline numbers: trie-vs-naive encode speedup, the judge-cache rates,
# and the batch-size sweep (sim GPU seconds per run vs judge_batch).
if command -v jq >/dev/null 2>&1; then
  echo
  jq -r '
    [.benchmarks[] | select(.name == "BM_TokenizerEncode")][0]
        .bytes_per_second as $trie |
    [.benchmarks[] | select(.name == "BM_TokenizerEncodeNaive")][0]
        .bytes_per_second as $naive |
    "tokenizer encode: trie \($trie / 1e6 | floor) MB/s, " +
    "naive \($naive / 1e6 | floor) MB/s, " +
    "speedup \($trie / $naive * 100 | floor / 100)x"
  ' "${script_dir}/BENCH_tokenizer.json"
  jq -r '
    .benchmarks[]
    | select(.name | startswith("BM_PipelineJudgeCache"))
    | "\(.name): \(.items_per_second / 1e3 | floor / 1000) kfiles/s, " +
      "judge_cache_hit_rate \(.judge_cache_hit_rate * 100 | floor)%"
  ' "${script_dir}/BENCH_pipeline.json"
  jq -r '
    .benchmarks[]
    | select(.name | startswith("BM_PipelineJudgeBatch"))
    | "\(.name): sim_gpu \(.sim_gpu_s_per_run * 100 | floor / 100) s/run, " +
      "occupancy \(.judge_batch_occupancy * 100 | floor / 100), " +
      "wall \(.real_time * 100 | floor / 100) ms"
  ' "${script_dir}/BENCH_pipeline.json"

  # Guard against batched-path bitrot: the sweep must actually have filled
  # batches (occupancy > 1 with nonzero submissions for judge_batch >= 4)
  # and the amortized passes must price below the sequential baseline.
  jq -e '
    ([.benchmarks[] | select(.name == "BM_PipelineJudgeBatch/judge_batch:1")]
        [0].sim_gpu_s_per_run) as $seq |
    [.benchmarks[]
     | select(.name | startswith("BM_PipelineJudgeBatch"))
     | select(.name != "BM_PipelineJudgeBatch/judge_batch:1")]
    | length > 0 and
      all(.[]; .judge_batches_per_run > 0 and .judge_batch_occupancy > 1
               and .sim_gpu_s_per_run < $seq)
  ' "${script_dir}/BENCH_pipeline.json" > /dev/null || {
    echo "error: batched judge path not exercised (batch stats zero or no" \
         "GPU saving) - see BENCH_pipeline.json" >&2
    exit 1
  }
  echo "batched judge path OK (occupancy > 1, sim GPU below sequential)"

  jq -r '
    .benchmarks[]
    | select(.name | startswith("BM_PipelineAdaptiveBatch"))
    | "\(.name): formed_occupancy \(.formed_occupancy * 100 | floor / 100)" +
      " (chunk \(.chunk_occupancy * 100 | floor / 100)), " +
      "sim_gpu \(.sim_gpu_s_per_run * 100 | floor / 100) s/run, " +
      "wall \(.real_time * 100 | floor / 100) ms"
  ' "${script_dir}/BENCH_batcher.json"

  # Cross-worker batch-formation guard: with several judge workers and
  # per-item arrivals, the T=200 us wait window must form strictly fuller
  # forward passes than both the T=0 formed baseline and the static
  # per-worker popped-chunk occupancy at the same load — and the fuller
  # passes must not cost more simulated GPU time. If this fails, the
  # adaptive batcher silently stopped coalescing across workers.
  jq -e '
    ([.benchmarks[]
      | select(.name == "BM_PipelineAdaptiveBatch/window_us:0")][0]) as $t0 |
    ([.benchmarks[]
      | select(.name == "BM_PipelineAdaptiveBatch/window_us:200")][0]) as $t |
    $t.formed_batches_per_run > 0
      and $t.formed_occupancy > $t0.formed_occupancy
      and $t.formed_occupancy > $t0.chunk_occupancy
      and $t.sim_gpu_s_per_run <= $t0.sim_gpu_s_per_run * 1.001
  ' "${script_dir}/BENCH_batcher.json" > /dev/null || {
    echo "error: adaptive batcher not forming cross-worker batches at" \
         "T=200us (occupancy <= static baseline, or sim GPU regressed)" \
         "- see BENCH_batcher.json" >&2
    exit 1
  }
  echo "adaptive batcher OK (T=200us occupancy beats static baseline," \
       "sim GPU no worse)"

  jq -r '
    [.benchmarks[] | select(.name == "BM_PipelineWarmStart")][0]
    | "warm start: persisted hit rate " +
      "\(.persisted_hit_rate * 100 | floor)%, " +
      "cross-run \(.cross_run_persisted_hit_rate * 100 | floor)%, " +
      "sim GPU cold \(.sim_gpu_cold_s * 100 | floor / 100) s -> warm " +
      "\(.sim_gpu_warm_s_per_run * 100 | floor / 100) s/run"
  ' "${script_dir}/BENCH_cache.json"

  # The second perf_cache invocation ran against the file the first one
  # saved: a zero cross-run persisted hit rate means cross-process
  # persistence is broken. Also enforce the warm-start acceptance bar
  # (persisted hit rate >= 95%, warm sim GPU <= 10% of cold).
  jq -e '
    [.benchmarks[] | select(.name == "BM_PipelineWarmStart")][0]
    | .cross_run_persisted_hit_rate > 0
      and .persisted_hit_rate >= 0.95
      and .warm_gpu_over_cold <= 0.10
  ' "${script_dir}/BENCH_cache.json" > /dev/null || {
    echo "error: warm start not persistent (cross-run rate 0, hit rate" \
         "< 95%, or warm sim GPU > 10% of cold) - see BENCH_cache.json" >&2
    exit 1
  }
  echo "persistent warm start OK (cross-run hits > 0, warm GPU <= 10% cold)"

  jq -r '
    .benchmarks[]
    | select(.name | startswith("BM_ExecuteDispatch"))
    | "\(.name) (\(.label)): \(.["steps/s"] / 1e6 | floor) Msteps/s, " +
      "fused_sites \(.fused_sites | floor)"
  ' "${script_dir}/BENCH_vm.json"

  # Dispatch-core gate: the pre-decoded fast core the execute stage runs by
  # default (the table core, dispatch:1/fused:0) must clear 1.5x the
  # reference switch's throughput, and the computed-goto core
  # (dispatch:2/fused:0) must not fall behind the reference. Smoke runs
  # (BENCH_MIN_TIME set) measure too few iterations for tight bounds; relax
  # to 1.3x / 0.9x there (the goto core's edge over the reference is
  # hardware-dependent and small).
  dispatch_bar="1.5"
  goto_bar="1.0"
  if [[ -n "${min_time}" ]]; then dispatch_bar="1.3"; goto_bar="0.9"; fi
  jq -e --argjson bar "${dispatch_bar}" --argjson gbar "${goto_bar}" '
    ([.benchmarks[]
      | select(.name == "BM_ExecuteDispatch/dispatch:0/fused:0")][0]
        ["steps/s"]) as $ref |
    ([.benchmarks[]
      | select(.name == "BM_ExecuteDispatch/dispatch:1/fused:0")][0]
        ["steps/s"]) as $table |
    ([.benchmarks[]
      | select(.name == "BM_ExecuteDispatch/dispatch:2/fused:0")][0]
        ["steps/s"]) as $goto |
    $table >= $ref * $bar and $goto > $ref * $gbar
  ' "${script_dir}/BENCH_vm.json" > /dev/null || {
    echo "error: VM dispatch regressed (table core < ${dispatch_bar}x" \
         "reference, or computed-goto core < ${goto_bar}x reference) - see" \
         "BENCH_vm.json" >&2
    exit 1
  }
  echo "vm dispatch OK (table core >= ${dispatch_bar}x reference)"

  # Superinstruction-fusion gate, tiered like the queue-sharding gate
  # below: on a host with real parallelism headroom (>= 4 CPUs) and a full
  # run, the fused table core must not be slower than the unfused one —
  # fusion exists to win throughput, and the bench loop fuses 12 sites
  # (fused_sites must be nonzero or the gate is measuring a no-op). Smoke
  # runs allow 10% timer noise; on smaller/noisier hosts only bound the
  # overhead (fused >= table / 1.5) so a pathological fusion regression
  # still fails while scheduler jitter does not.
  cpus="$(nproc 2>/dev/null || echo 1)"
  if [[ "${cpus}" -ge 4 && -z "${min_time}" ]]; then
    fusion_filter='$fused >= $table'
    fusion_desc="fused table core >= unfused (${cpus} CPUs)"
  elif [[ "${cpus}" -ge 4 ]]; then
    fusion_filter='$fused >= $table / 1.10'
    fusion_desc="fused within noise of unfused (smoke run, ${cpus} CPUs)"
  else
    fusion_filter='$fused >= $table / 1.5'
    fusion_desc="fusion overhead bounded on ${cpus}-CPU host (timer too noisy for a strict win)"
  fi
  jq -e '
    ([.benchmarks[]
      | select(.name == "BM_ExecuteDispatch/dispatch:1/fused:0")][0]
        ["steps/s"]) as $table |
    ([.benchmarks[]
      | select(.name == "BM_ExecuteDispatch/dispatch:1/fused:1")][0]) as $f |
    $f["steps/s"] as $fused |
    $f.fused_sites > 0 and '"${fusion_filter}"'
  ' "${script_dir}/BENCH_vm.json" > /dev/null || {
    echo "error: superinstruction fusion gate failed (${fusion_desc}," \
         "or fused run engaged zero fusion sites) - see BENCH_vm.json" >&2
    exit 1
  }
  echo "vm fusion OK (${fusion_desc})"

  jq -r '
    .benchmarks[]
    | select(.name | startswith("BM_PipelineExecuteScale"))
    | "\(.name): \(.items_per_second / 1e6 * 1000 | floor / 1000)" +
      " Mitems/s, shards \(.queue_shards)," +
      " steals/run \(.queue_steals_per_run | floor)"
  ' "${script_dir}/BENCH_vm.json"

  # Queue-sharding gate: with real parallelism available (>= 4 CPUs), the
  # sharded queue must move items through the 4-worker hand-off faster
  # than the single-mutex queue. On smaller hosts there is nothing to
  # parallelize — striping is pure scan overhead — so only sanity-check
  # that the overhead stays bounded (<= 1.5x the mutex wall time).
  cpus="$(nproc 2>/dev/null || echo 1)"
  if [[ "${cpus}" -ge 4 && -z "${min_time}" ]]; then
    shard_filter='$s.real_time < $m.real_time'
    shard_desc="sharded beats mutex at 4 workers (${cpus} CPUs)"
  elif [[ "${cpus}" -ge 4 ]]; then
    # Smoke runs measure a single short repetition; allow 10% noise.
    shard_filter='$s.real_time < $m.real_time * 1.10'
    shard_desc="sharded within noise of mutex at 4 workers (smoke run, ${cpus} CPUs)"
  else
    shard_filter='$s.real_time <= $m.real_time * 1.5'
    shard_desc="sharded overhead bounded on ${cpus}-CPU host (no parallelism to win)"
  fi
  jq -e '
    ([.benchmarks[]
      | select(.name ==
          "BM_PipelineExecuteScale/workers:4/shards:1/real_time")][0]) as $m |
    ([.benchmarks[]
      | select(.name ==
          "BM_PipelineExecuteScale/workers:4/shards:0/real_time")][0]) as $s |
    $s.queue_steals_per_run >= 0 and '"${shard_filter}"'
  ' "${script_dir}/BENCH_vm.json" > /dev/null || {
    echo "error: sharded execute-queue gate failed (${shard_desc}) - see" \
         "BENCH_vm.json" >&2
    exit 1
  }
  echo "execute-queue sharding OK (${shard_desc})"

  jq -r '
    .benchmarks[]
    | select(.name | startswith("BM_PipelineFaults"))
    | "\(.name): success \(.success_rate * 1000 | floor / 10)%, " +
      "goodput \(.goodput_files_per_s | floor) files/s, " +
      "errors/run \(.judge_errors_per_run), " +
      "retries/run \(.judge_retries_per_run)"
  ' "${script_dir}/BENCH_faults.json"
  jq -r '
    .benchmarks[]
    | select(.name | startswith("BM_ClientAddedLatency"))
    | "\(.name): p99 added latency " +
      "\(.p99_added_latency_us | floor) us " +
      "(\(.served_prompts_per_run | floor) prompts served)"
  ' "${script_dir}/BENCH_faults.json"

  # Resilience gates: at 20% seeded transient faults the retry layer must
  # recover >= 95% of the files (the S3/S6 acceptance bar), and at both
  # rates retries-on must strictly beat retries-off on success rate — if
  # either fails, the retry/split machinery silently stopped recovering
  # faulted passes. The p99 added latency must be a real, finite price
  # (> 0: faults genuinely injected; the bound is generous because backoff
  # waits are real wall time on a loaded CI host).
  jq -e '
    ([.benchmarks[]
      | select(.name == "BM_PipelineFaults/fault_pct:20/retries:1")][0])
      as $r20 |
    ([.benchmarks[]
      | select(.name == "BM_PipelineFaults/fault_pct:20/retries:0")][0])
      as $n20 |
    ([.benchmarks[]
      | select(.name == "BM_PipelineFaults/fault_pct:5/retries:1")][0])
      as $r5 |
    ([.benchmarks[]
      | select(.name == "BM_PipelineFaults/fault_pct:5/retries:0")][0])
      as $n5 |
    $r20.success_rate >= 0.95
      and $r20.success_rate > $n20.success_rate
      and $r5.success_rate > $n5.success_rate
      and $r20.judge_retries_per_run > 0
  ' "${script_dir}/BENCH_faults.json" > /dev/null || {
    echo "error: resilience gate failed (20% faults with retries must" \
         "recover >= 95% of files and beat retries-off) - see" \
         "BENCH_faults.json" >&2
    exit 1
  }
  jq -e '
    [.benchmarks[] | select(.name | startswith("BM_ClientAddedLatency"))]
    | length > 0 and all(.[]; .p99_added_latency_us > 0)
  ' "${script_dir}/BENCH_faults.json" > /dev/null || {
    echo "error: added-latency probe saw no faults (p99 added latency 0)" \
         "- see BENCH_faults.json" >&2
    exit 1
  }
  echo "resilience OK (20% faults + retries >= 95% success, beats" \
       "retries-off; p99 added latency nonzero)"

  jq -r '
    .benchmarks[]
    | select(.name | startswith("BM_PipelineTraced"))
    | "\(.name): wall \(.real_time * 100 | floor / 100) ms" +
      (if .spans_per_run then
         ", \(.spans_per_run | floor) spans/run" else "" end) +
      (if .metric_samples > 0 then
         ", \(.metric_samples) metric samples" else "" end)
  ' "${script_dir}/BENCH_obs.json"
  jq -r '
    ([.benchmarks[] | select(.name == "BM_CounterInc")][0].real_time)
      as $inc |
    ([.benchmarks[] | select(.name == "BM_CounterIncDetached")][0]
        .real_time) as $off |
    ([.benchmarks[] | select(.name == "BM_SpanRecord")][0].real_time)
      as $span |
    "obs primitives: counter inc \($inc * 100 | floor / 100) ns " +
    "(detached \($off * 100 | floor / 100) ns), " +
    "span record \($span * 100 | floor / 100) ns"
  ' "${script_dir}/BENCH_obs.json"

  # Observability overhead gate. The <2% tracing-off budget rests on the
  # disabled path being a single null-handle branch per site (~0.7 ns x
  # a few sites per file is micro-seconds on milli-second runs); the
  # noise-robust way to CI-gate that on a shared box is the microbench
  # ratio -- a detached counter inc must stay well under half an attached
  # one (it is ~0.11x today; if the null early-out ever disappears the
  # two converge and this fires). Wall-clock comparisons between the
  # separately-timed pipeline modes see scheduler noise far above 2%
  # (load spikes swing a 13 ms run by 30%+ in either direction), so the
  # pipeline-level bound is a generous structural backstop, not the
  # budget. Noise-free invariants carry the rest: attaching obs must not
  # perturb the computation (cold sim-GPU seconds equal across modes to
  # within float summation-order jitter), and the traced run must
  # actually produce spans + a metrics snapshot.
  jq -e '
    ([.benchmarks[]
      | select(.name == "BM_PipelineTraced/obs:0")][0]) as $off |
    ([.benchmarks[]
      | select(.name == "BM_PipelineTraced/obs:1")][0]) as $reg |
    ([.benchmarks[]
      | select(.name == "BM_PipelineTraced/obs:2")][0]) as $traced |
    ([.benchmarks[]
      | select(.name == "BM_CounterInc")][0].real_time) as $inc |
    ([.benchmarks[]
      | select(.name == "BM_CounterIncDetached")][0].real_time) as $inert |
    def near($a; $b): ($a - $b | if . < 0 then -. else . end) < 0.001;
    $inert <= $inc * 0.5
      and $reg.real_time <= $off.real_time * 1.5
      and near($reg.sim_gpu_s_cold; $off.sim_gpu_s_cold)
      and near($traced.sim_gpu_s_cold; $off.sim_gpu_s_cold)
      and $traced.spans_per_run > 0
      and $traced.metric_samples > 0
  ' "${script_dir}/BENCH_obs.json" > /dev/null || {
    echo "error: observability gate failed (detached counter inc not well" \
         "under an attached one, registry-attached wall > 1.5x detached," \
         "obs attachment changed sim-GPU accounting, or traced run" \
         "produced no spans/metrics) - see BENCH_obs.json" >&2
    exit 1
  }
  echo "observability OK (disabled path stays a branch, sim-GPU identical" \
       "across modes, traced run produced spans + metrics)"

  jq -r '
    .benchmarks[]
    | select(.name | startswith("BM_ServeClosedLoop"))
    | "\(.name): p50 \(.p50_latency_us | floor) us, " +
      "p99 \(.p99_latency_us | floor) us, " +
      "\(.jobs_per_s | floor) jobs/s"
  ' "${script_dir}/BENCH_serve.json"

  # Serving gates. Closed loop: every client's every job must come back as
  # a verdict (completed_per_run == clients x 6) with nonzero throughput
  # and a measured tail. Fairness: with three tenants saturating one
  # worker, the weighted fair scheduler must keep the spread loose-bounded
  # (max/min completions < 2.5) and starve nobody -- if a tenant ever
  # reads zero completions the WRR cursor or the per-tenant queues broke.
  jq -e '
    ([.benchmarks[]
      | select(.name == "BM_ServeClosedLoop/clients:1/real_time")][0])
      as $c1 |
    ([.benchmarks[]
      | select(.name == "BM_ServeClosedLoop/clients:2/real_time")][0])
      as $c2 |
    ([.benchmarks[]
      | select(.name == "BM_ServeClosedLoop/clients:4/real_time")][0])
      as $c4 |
    $c1.completed_per_run == 6 and $c2.completed_per_run == 12
      and $c4.completed_per_run == 24
      and ($c1.jobs_per_s > 0 and $c2.jobs_per_s > 0 and $c4.jobs_per_s > 0)
      and ($c1.p99_latency_us > 0 and $c4.p99_latency_us > 0)
  ' "${script_dir}/BENCH_serve.json" > /dev/null || {
    echo "error: serving closed-loop gate failed (lost verdicts, zero" \
         "throughput, or empty latency tail) - see BENCH_serve.json" >&2
    exit 1
  }
  jq -e '
    ([.benchmarks[]
      | select(.name == "BM_ServeFairness/tenants:3/real_time")][0]) as $f |
    $f.tenant_min_completed > 0
      and $f.fairness_ratio > 0 and $f.fairness_ratio < 2.5
  ' "${script_dir}/BENCH_serve.json" > /dev/null || {
    echo "error: serving fairness gate failed (a tenant starved or the" \
         "completion spread exceeded 2.5x) - see BENCH_serve.json" >&2
    exit 1
  }
  echo "serving OK (closed loop loses nothing, 3-tenant spread < 2.5x," \
       "nobody starved)"
fi
