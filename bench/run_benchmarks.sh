#!/usr/bin/env bash
# Runs the perf_* Google Benchmark binaries and records their JSON output
# next to this script, so every PR leaves a perf trajectory:
#   bench/BENCH_tokenizer.json  - trie vs naive encode, count, roundtrip
#   bench/BENCH_pipeline.json   - mode/worker sweeps + judge-cache counters
#
# Usage: bench/run_benchmarks.sh [build-dir]
#   BENCH_MIN_TIME=0.01s bench/run_benchmarks.sh   # quick smoke run
set -euo pipefail

script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
repo_root="$(dirname "${script_dir}")"
build_dir="${1:-${repo_root}/build}"
# benchmark <1.8 rejects the "0.01s" suffix form; strip it for portability.
min_time="${BENCH_MIN_TIME:-}"
min_time="${min_time%s}"

if [[ ! -d "${build_dir}" ]]; then
  echo "error: build directory '${build_dir}' not found." >&2
  echo "Run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

bench_args=(--benchmark_repetitions=1)
if [[ -n "${min_time}" ]]; then
  bench_args+=("--benchmark_min_time=${min_time}")
fi

run_bench() {
  local name="$1" out="$2"
  local binary="${build_dir}/${name}"
  if [[ ! -x "${binary}" ]]; then
    echo "error: ${binary} missing (benchmarks disabled at configure time?)" >&2
    exit 1
  fi
  echo "== ${name} -> ${out}"
  "${binary}" "${bench_args[@]}" \
    --benchmark_format=console \
    --benchmark_out="${out}" \
    --benchmark_out_format=json
}

run_bench perf_tokenizer "${script_dir}/BENCH_tokenizer.json"
run_bench perf_pipeline "${script_dir}/BENCH_pipeline.json"

# Headline numbers: trie-vs-naive encode speedup, the judge-cache rates,
# and the batch-size sweep (sim GPU seconds per run vs judge_batch).
if command -v jq >/dev/null 2>&1; then
  echo
  jq -r '
    [.benchmarks[] | select(.name == "BM_TokenizerEncode")][0]
        .bytes_per_second as $trie |
    [.benchmarks[] | select(.name == "BM_TokenizerEncodeNaive")][0]
        .bytes_per_second as $naive |
    "tokenizer encode: trie \($trie / 1e6 | floor) MB/s, " +
    "naive \($naive / 1e6 | floor) MB/s, " +
    "speedup \($trie / $naive * 100 | floor / 100)x"
  ' "${script_dir}/BENCH_tokenizer.json"
  jq -r '
    .benchmarks[]
    | select(.name | startswith("BM_PipelineJudgeCache"))
    | "\(.name): \(.items_per_second / 1e3 | floor / 1000) kfiles/s, " +
      "judge_cache_hit_rate \(.judge_cache_hit_rate * 100 | floor)%"
  ' "${script_dir}/BENCH_pipeline.json"
  jq -r '
    .benchmarks[]
    | select(.name | startswith("BM_PipelineJudgeBatch"))
    | "\(.name): sim_gpu \(.sim_gpu_s_per_run * 100 | floor / 100) s/run, " +
      "occupancy \(.judge_batch_occupancy * 100 | floor / 100), " +
      "wall \(.real_time * 100 | floor / 100) ms"
  ' "${script_dir}/BENCH_pipeline.json"

  # Guard against batched-path bitrot: the sweep must actually have filled
  # batches (occupancy > 1 with nonzero submissions for judge_batch >= 4)
  # and the amortized passes must price below the sequential baseline.
  jq -e '
    ([.benchmarks[] | select(.name == "BM_PipelineJudgeBatch/judge_batch:1")]
        [0].sim_gpu_s_per_run) as $seq |
    [.benchmarks[]
     | select(.name | startswith("BM_PipelineJudgeBatch"))
     | select(.name != "BM_PipelineJudgeBatch/judge_batch:1")]
    | length > 0 and
      all(.[]; .judge_batches_per_run > 0 and .judge_batch_occupancy > 1
               and .sim_gpu_s_per_run < $seq)
  ' "${script_dir}/BENCH_pipeline.json" > /dev/null || {
    echo "error: batched judge path not exercised (batch stats zero or no" \
         "GPU saving) - see BENCH_pipeline.json" >&2
    exit 1
  }
  echo "batched judge path OK (occupancy > 1, sim GPU below sequential)"
fi
