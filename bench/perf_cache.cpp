// Warm-start benchmarks for the persistent artifact store (PR 3): the
// cold-run -> warm-run collapse of simulated GPU time when judge verdicts
// (and front-end compiles) are served from a content-addressed store
// instead of being recomputed.
//
// BM_PipelineWarmStart reports, per run over the canonical 120-file batch:
//   sim_gpu_cold_s               - the store-less baseline's LLM cost
//   sim_gpu_warm_s_per_run       - the warm run's LLM cost (target: ~0)
//   warm_gpu_over_cold           - the collapse ratio (target: <= 0.10)
//   persisted_hit_rate           - persisted hits / judged (target: >= 0.95)
//   cross_run_persisted_hit_rate - persisted hit rate of this process's
//     FIRST run, i.e. what the on-disk cache file delivered before this
//     process computed anything itself. 0 on a fresh file; ~1 when the
//     file was written by a previous invocation. bench/run_benchmarks.sh
//     runs this binary twice against one file and fails if the second
//     invocation reports 0 here — the canary for persistence bitrot.
//
// The cache file defaults to a temp path; set LLM4VV_BENCH_CACHE_FILE to
// pin it (as run_benchmarks.sh does for the double-run check).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>

#include "core/llm4vv.hpp"

namespace {

using namespace llm4vv;

std::string cache_file_path() {
  if (const char* env = std::getenv("LLM4VV_BENCH_CACHE_FILE")) {
    return env;
  }
  return (std::filesystem::temp_directory_path() /
          "llm4vv_warm_start_cache.jsonl")
      .string();
}

/// Same batch recipe as perf_pipeline's BM_Pipeline* benches: 120 files,
/// 3/10 invalid.
std::vector<frontend::SourceFile> make_batch(std::size_t size,
                                             int invalid_tenths) {
  const std::size_t invalid =
      size * static_cast<std::size_t>(invalid_tenths) / 10;
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = size + 32;
  gen.seed = 1234;
  const auto suite = corpus::generate_suite(gen);

  probing::ProbingConfig probe;
  probe.issue_counts = {invalid / 3, invalid / 3,
                        invalid - 2 * (invalid / 3), 0, 0, size - invalid};
  probe.seed = 77;
  const auto probed = probing::probe_suite(suite, probe);

  std::vector<frontend::SourceFile> files;
  files.reserve(probed.files.size());
  for (const auto& f : probed.files) files.push_back(f.file);
  return files;
}

struct WarmStartRig {
  std::shared_ptr<llm::ModelClient> client;
  std::shared_ptr<cache::ArtifactStore> store;
  std::uint64_t compiler_fingerprint = 0;
  pipeline::PipelineConfig pipe_config;
};

WarmStartRig make_rig(std::size_t workers) {
  WarmStartRig rig;
  rig.client = core::make_simulated_client(workers);
  cache::ArtifactStoreConfig store_config;
  store_config.path = cache_file_path();
  // The fingerprint names the exact world these artifacts are valid in;
  // change the batch recipe above and the old file cold-starts instead of
  // serving stale verdicts.
  store_config.fingerprint = cache::StoreFingerprint{
      "warm-start-120x3-seed1234", rig.client->model_name(), 0};
  rig.store = std::make_shared<cache::ArtifactStore>(store_config);
  rig.compiler_fingerprint =
      toolchain::driver_fingerprint(toolchain::nvc_persona());
  rig.pipe_config.mode = pipeline::PipelineMode::kRecordAll;
  rig.pipe_config.compile_workers = workers;
  rig.pipe_config.execute_workers = workers;
  rig.pipe_config.judge_workers = workers;
  return rig;
}

/// Build a pipeline whose judge and compiler share the rig's store.
pipeline::ValidationPipeline make_persistent_pipeline(
    const WarmStartRig& rig, std::shared_ptr<const judge::Llmj>& judge_out,
    std::shared_ptr<cache::CompileCache>& compile_cache_out) {
  judge::JudgeCacheConfig judge_config;
  judge_config.store = rig.store;
  auto judge = std::make_shared<const judge::Llmj>(
      rig.client, llm::PromptStyle::kAgentDirect, judge_config);
  cache::CompileCacheConfig compile_config;
  compile_config.store = rig.store;
  auto compile_cache = std::make_shared<cache::CompileCache>(
      compile_config, rig.compiler_fingerprint);
  judge_out = judge;
  compile_cache_out = compile_cache;
  return pipeline::ValidationPipeline(
      toolchain::CompilerDriver(toolchain::nvc_persona(), compile_cache),
      toolchain::Executor(), judge, rig.pipe_config);
}

/// One-time per-process setup. Google Benchmark re-invokes the benchmark
/// function to estimate iteration counts, so anything that must observe
/// the cache file's state *at process start* (the cross-run hit rate) has
/// to be computed exactly once — a later invocation would see the file
/// this process itself just saved and always report a warm start.
struct WarmStartSetup {
  std::vector<frontend::SourceFile> files;
  WarmStartRig rig;
  double cross_run_rate = 0.0;
  double cold_gpu = 0.0;
};

WarmStartSetup& warm_start_setup() {
  static WarmStartSetup setup = [] {
    WarmStartSetup s;
    s.files = make_batch(120, 3);
    s.rig = make_rig(/*workers=*/2);

    // First run of this process: whatever it gets from the cache file is
    // genuine cross-invocation persistence (0 on a fresh file). Persist
    // and save afterwards, so the NEXT invocation warm-starts from disk.
    {
      std::shared_ptr<const judge::Llmj> judge;
      std::shared_ptr<cache::CompileCache> compile_cache;
      const auto pipe = make_persistent_pipeline(s.rig, judge, compile_cache);
      const auto first = pipe.run(s.files);
      s.cross_run_rate =
          first.judge_stage.processed == 0
              ? 0.0
              : static_cast<double>(first.judge_persisted_hits) /
                    static_cast<double>(first.judge_stage.processed);
      judge->persist_cache();
      compile_cache->persist();
      s.rig.store->save();
    }

    // Cold baseline: no store, fresh in-process cache — every judged file
    // pays the model call. Not timed; it calibrates the collapse ratio.
    {
      auto judge = std::make_shared<const judge::Llmj>(
          s.rig.client, llm::PromptStyle::kAgentDirect);
      const pipeline::ValidationPipeline pipe(
          toolchain::CompilerDriver(toolchain::nvc_persona()),
          toolchain::Executor(), judge, s.rig.pipe_config);
      s.cold_gpu = pipe.run(s.files).judge_gpu_seconds;
    }
    return s;
  }();
  return setup;
}

void BM_PipelineWarmStart(benchmark::State& state) {
  WarmStartSetup& setup = warm_start_setup();
  const auto& files = setup.files;
  WarmStartRig& rig = setup.rig;

  // Timed: a full warm start per iteration — construct the judge and the
  // compile cache from the store (decode every record), run the pipeline.
  double warm_gpu = 0.0;
  std::uint64_t persisted_hits = 0;
  std::uint64_t judged = 0;
  std::uint64_t compile_persisted = 0;
  for (auto _ : state) {
    std::shared_ptr<const judge::Llmj> judge;
    std::shared_ptr<cache::CompileCache> compile_cache;
    const auto pipe = make_persistent_pipeline(rig, judge, compile_cache);
    const auto result = pipe.run(files);
    warm_gpu += result.judge_gpu_seconds;
    persisted_hits += result.judge_persisted_hits;
    judged += result.judge_stage.processed;
    compile_persisted += result.compile_persisted_hits;
    benchmark::DoNotOptimize(result.records.data());
  }

  const double iterations = static_cast<double>(state.iterations());
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * files.size()));
  state.counters["sim_gpu_cold_s"] = setup.cold_gpu;
  state.counters["sim_gpu_warm_s_per_run"] = warm_gpu / iterations;
  state.counters["warm_gpu_over_cold"] =
      setup.cold_gpu == 0.0 ? 0.0 : (warm_gpu / iterations) / setup.cold_gpu;
  state.counters["persisted_hit_rate"] =
      judged == 0 ? 0.0
                  : static_cast<double>(persisted_hits) /
                        static_cast<double>(judged);
  state.counters["cross_run_persisted_hit_rate"] = setup.cross_run_rate;
  state.counters["compile_persisted_per_run"] =
      static_cast<double>(compile_persisted) / iterations;
}
BENCHMARK(BM_PipelineWarmStart)->Unit(benchmark::kMillisecond);

void BM_ArtifactStoreRoundTrip(benchmark::State& state) {
  // Save + reload throughput for a store of `records` synthetic verdicts —
  // the fixed cost a warm start pays before the pipeline runs.
  const auto records = static_cast<std::uint64_t>(state.range(0));
  const std::string path =
      (std::filesystem::temp_directory_path() /
       "llm4vv_store_roundtrip_bench.jsonl")
          .string();
  cache::ArtifactStoreConfig config;
  config.path = path;
  config.fingerprint = cache::StoreFingerprint{"bench", "sim", 1};

  cache::ArtifactStore store(config);
  for (std::uint64_t k = 0; k < records; ++k) {
    store.put("judge", k, k ^ 0xABCD,
              {{"prompt", std::string(512, 'p')},
               {"text", std::string(128, 't')},
               {"verdict", "0"}});
  }
  for (auto _ : state) {
    store.save();
    cache::ArtifactStore reloaded(config);
    benchmark::DoNotOptimize(reloaded.size());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * records));
  std::error_code ec;
  std::filesystem::remove(path, ec);
}
BENCHMARK(BM_ArtifactStoreRoundTrip)
    ->Arg(128)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"records"});

}  // namespace

BENCHMARK_MAIN();
