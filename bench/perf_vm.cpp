// Execute-stage microbenchmarks: VM throughput, and the cost of the
// device-mirror data movement relative to plain host execution.
#include <benchmark/benchmark.h>

#include "core/llm4vv.hpp"

namespace {

using namespace llm4vv;

std::shared_ptr<const vm::Module> compile_one(const char* source) {
  frontend::SourceFile file;
  file.name = "bench.c";
  file.flavor = frontend::Flavor::kOpenACC;
  file.content = source;
  toolchain::CompilerConfig config = toolchain::nvc_persona();
  config.strictness_reject_rate = 0.0;
  const toolchain::CompilerDriver driver(config);
  auto result = driver.compile(file);
  if (!result.success) throw std::runtime_error(result.stderr_text);
  return result.module;
}

constexpr const char* kHostLoop = R"(
#include <stdlib.h>
#define N 4096
int main() {
  double *a;
  a = (double *)malloc(N * sizeof(double));
  for (int i = 0; i < N; i++) { a[i] = i * 0.5; }
  double sum = 0.0;
  for (int i = 0; i < N; i++) { sum = sum + a[i]; }
  free(a);
  return sum > 0.0 ? 0 : 1;
}
)";

constexpr const char* kDeviceLoop = R"(
#include <stdlib.h>
#define N 4096
int main() {
  double *a;
  a = (double *)malloc(N * sizeof(double));
  for (int i = 0; i < N; i++) { a[i] = i * 0.5; }
#pragma acc parallel loop copy(a[0:N])
  for (int i = 0; i < N; i++) { a[i] = a[i] * 2.0; }
  free(a);
  return 0;
}
)";

void BM_ExecuteHostLoop(benchmark::State& state) {
  const auto module = compile_one(kHostLoop);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto result = vm::execute(*module);
    steps += result.steps;
    benchmark::DoNotOptimize(result.return_code);
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecuteHostLoop)->Unit(benchmark::kMillisecond);

void BM_ExecuteDeviceLoop(benchmark::State& state) {
  const auto module = compile_one(kDeviceLoop);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto result = vm::execute(*module);
    steps += result.steps;
    benchmark::DoNotOptimize(result.return_code);
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecuteDeviceLoop)->Unit(benchmark::kMillisecond);

void BM_GeneratedSuiteExecution(benchmark::State& state) {
  // End-to-end compile+run over a generated suite sample.
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = 32;
  gen.seed = 7;
  const auto suite = corpus::generate_suite(gen);
  toolchain::CompilerConfig config = toolchain::nvc_persona();
  config.strictness_reject_rate = 0.0;
  const toolchain::CompilerDriver driver(config);
  const toolchain::Executor executor;
  for (auto _ : state) {
    for (const auto& tc : suite.cases) {
      const auto compiled = driver.compile(tc.file);
      const auto run = executor.run(compiled.module);
      benchmark::DoNotOptimize(run.return_code);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * suite.cases.size()));
}
BENCHMARK(BM_GeneratedSuiteExecution)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
