// Execute-stage microbenchmarks: VM throughput (including the dispatch-core
// sweep behind the BENCH_vm.json CI gate), the cost of the device-mirror
// data movement relative to plain host execution, and the sharded-vs-mutex
// queue hand-off sweep of the execute stage. See docs/BENCHMARKS.md.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "core/llm4vv.hpp"
#include "support/mpmc_queue.hpp"

namespace {

using namespace llm4vv;

std::shared_ptr<const vm::Module> compile_one(const char* source) {
  frontend::SourceFile file;
  file.name = "bench.c";
  file.flavor = frontend::Flavor::kOpenACC;
  file.content = source;
  toolchain::CompilerConfig config = toolchain::nvc_persona();
  config.strictness_reject_rate = 0.0;
  const toolchain::CompilerDriver driver(config);
  auto result = driver.compile(file);
  if (!result.success) throw std::runtime_error(result.stderr_text);
  return result.module;
}

constexpr const char* kHostLoop = R"(
#include <stdlib.h>
#define N 4096
int main() {
  double *a;
  a = (double *)malloc(N * sizeof(double));
  for (int i = 0; i < N; i++) { a[i] = i * 0.5; }
  double sum = 0.0;
  for (int i = 0; i < N; i++) { sum = sum + a[i]; }
  free(a);
  return sum > 0.0 ? 0 : 1;
}
)";

constexpr const char* kDeviceLoop = R"(
#include <stdlib.h>
#define N 4096
int main() {
  double *a;
  a = (double *)malloc(N * sizeof(double));
  for (int i = 0; i < N; i++) { a[i] = i * 0.5; }
#pragma acc parallel loop copy(a[0:N])
  for (int i = 0; i < N; i++) { a[i] = a[i] * 2.0; }
  free(a);
  return 0;
}
)";

void BM_ExecuteHostLoop(benchmark::State& state) {
  const auto module = compile_one(kHostLoop);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto result = vm::execute(*module);
    steps += result.steps;
    benchmark::DoNotOptimize(result.return_code);
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecuteHostLoop)->Unit(benchmark::kMillisecond);

void BM_ExecuteDeviceLoop(benchmark::State& state) {
  const auto module = compile_one(kDeviceLoop);
  std::uint64_t steps = 0;
  for (auto _ : state) {
    const auto result = vm::execute(*module);
    steps += result.steps;
    benchmark::DoNotOptimize(result.return_code);
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecuteDeviceLoop)->Unit(benchmark::kMillisecond);

void BM_ExecuteDispatch(benchmark::State& state) {
  // The dispatch-core ablation behind the CI gate: the same host loop under
  // the reference switch (0), the function-pointer table (1), and the
  // token-threaded core (2), each with superinstruction fusion off
  // (fused:0) or on (fused:1; fast cores only — the reference never
  // fuses). The acceptance bars are threaded >= 1.5x the reference's
  // steps/s and fused >= the unfused table core; the `dispatch`/`fused`
  // counters mirror the args so jq can key on them, the resolved core
  // name is in the run label, and `fused_sites` proves the fused runs
  // actually engaged the pass (a zero there would gate a no-op).
  const auto mode = static_cast<vm::DispatchMode>(state.range(0));
  const bool fuse = state.range(1) != 0;
  const auto module = compile_one(kHostLoop);
  std::uint64_t steps = 0;
  std::uint64_t fused_sites = 0;
  for (auto _ : state) {
    const auto result = vm::execute(*module, {}, mode, fuse);
    steps += result.steps;
    fused_sites = result.fused_instructions;
    benchmark::DoNotOptimize(result.return_code);
  }
  state.SetLabel(vm::dispatch_mode_name(mode));
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
  state.counters["fused_sites"] = static_cast<double>(fused_sites);
}
BENCHMARK(BM_ExecuteDispatch)
    ->Args({static_cast<int>(vm::DispatchMode::kReference), 0})
    ->Args({static_cast<int>(vm::DispatchMode::kTable), 0})
    ->Args({static_cast<int>(vm::DispatchMode::kTable), 1})
    ->Args({static_cast<int>(vm::DispatchMode::kThreaded), 0})
    ->Args({static_cast<int>(vm::DispatchMode::kThreaded), 1})
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"dispatch", "fused"});

void BM_PipelineExecuteScale(benchmark::State& state) {
  // The execute stage's queue hand-off at scale, isolated: W producers
  // feed W consumers through one bounded MpmcQueue in the pipeline's
  // per-item arrival shape (push / pop_up_to(1)) with no per-item work,
  // so queue synchronization is all that is measured. shards:0 stripes
  // min(workers, 8) — deliberately NOT the pipeline's auto policy (which
  // also caps at hardware_concurrency and would decline to shard on a
  // small host): the A/B needs the sharded configuration measured
  // everywhere, including where it only costs. shards:1 is the
  // single-mutex baseline the sharded queue must beat at >= 4 workers on
  // multi-core hosts (see docs/BENCHMARKS.md for the gate's tiers).
  const auto workers = static_cast<std::size_t>(state.range(0));
  std::size_t shards = static_cast<std::size_t>(state.range(1));
  if (shards == 0) shards = std::min<std::size_t>(workers, 8);
  constexpr std::size_t kItemsPerProducer = 2048;
  const std::size_t total = kItemsPerProducer * workers;
  std::uint64_t steals = 0;
  for (auto _ : state) {
    support::MpmcQueue<std::size_t> queue(128, shards);
    std::atomic<std::uint64_t> consumed{0};
    std::vector<std::thread> threads;
    threads.reserve(workers * 2);
    for (std::size_t p = 0; p < workers; ++p) {
      threads.emplace_back([&queue] {
        for (std::size_t i = 0; i < kItemsPerProducer; ++i) {
          queue.push(i);
        }
      });
    }
    for (std::size_t c = 0; c < workers; ++c) {
      threads.emplace_back([&queue, &consumed] {
        std::vector<std::size_t> out;
        std::uint64_t local = 0;
        for (;;) {
          out.clear();
          if (queue.pop_up_to(1, out) == 0) break;
          local += out[0] + 1;
        }
        consumed.fetch_add(local, std::memory_order_relaxed);
      });
    }
    for (std::size_t p = 0; p < workers; ++p) threads[p].join();
    queue.close();
    for (std::size_t c = workers; c < threads.size(); ++c) threads[c].join();
    benchmark::DoNotOptimize(consumed.load());
    steals += queue.steals();
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * total));
  state.counters["queue_shards"] = static_cast<double>(shards);
  state.counters["queue_steals_per_run"] =
      static_cast<double>(steals) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_PipelineExecuteScale)
    ->ArgsProduct({{1, 4, 8}, {1, 0}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->ArgNames({"workers", "shards"});

void BM_GeneratedSuiteExecution(benchmark::State& state) {
  // End-to-end compile+run over a generated suite sample.
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = 32;
  gen.seed = 7;
  const auto suite = corpus::generate_suite(gen);
  toolchain::CompilerConfig config = toolchain::nvc_persona();
  config.strictness_reject_rate = 0.0;
  const toolchain::CompilerDriver driver(config);
  const toolchain::Executor executor;
  for (auto _ : state) {
    for (const auto& tc : suite.cases) {
      const auto compiled = driver.compile(tc.file);
      const auto run = executor.run(compiled.module);
      benchmark::DoNotOptimize(run.return_code);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * suite.cases.size()));
}
BENCHMARK(BM_GeneratedSuiteExecution)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
