// Resilience bench (S6): what the retry layer buys — and costs — under a
// seeded FaultPlan.
//
//   BM_PipelineFaults sweeps transient fault rates {5%, 20%} x retries
//   {off, on} over the BM_PipelineMode 120-file corpus and reports
//   *goodput* (successfully judged files per wall second, plus the success
//   rate) and the retry/error accounting. The headline claims gated by
//   run_benchmarks.sh: at 20% faults, retries lift the success rate to
//   >= 95%, and strictly above the no-retry configuration.
//
//   BM_ClientAddedLatency isolates the price: the p99 *added* per-request
//   latency (faulted client minus fault-free client, same prompts, same
//   retry policy) — the tail a caller pays for riding through faults via
//   backoff instead of failing fast.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <vector>

#include "core/llm4vv.hpp"
#include "judge/prompt.hpp"

namespace {

using namespace llm4vv;

/// The BM_PipelineMode corpus: 120 probed files, 30% invalid share.
std::vector<frontend::SourceFile> make_batch(std::size_t size,
                                             int invalid_tenths) {
  const std::size_t invalid =
      size * static_cast<std::size_t>(invalid_tenths) / 10;
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = size + 32;
  gen.seed = 1234;
  const auto suite = corpus::generate_suite(gen);

  probing::ProbingConfig probe;
  probe.issue_counts = {invalid / 3, invalid / 3,
                        invalid - 2 * (invalid / 3), 0, 0, size - invalid};
  probe.seed = 77;
  const auto probed = probing::probe_suite(suite, probe);

  std::vector<frontend::SourceFile> files;
  files.reserve(probed.files.size());
  for (const auto& f : probed.files) files.push_back(f.file);
  return files;
}

std::shared_ptr<llm::ModelClient> make_client(double transient_rate,
                                              bool retries,
                                              std::size_t workers) {
  llm::CoderModelConfig model_config;
  if (transient_rate > 0.0) {
    llm::FaultPlanConfig plan;
    plan.transient_rate = transient_rate;
    model_config.faults = std::make_shared<llm::FaultPlan>(plan);
  }
  auto model = std::make_shared<const llm::SimulatedCoderModel>(model_config);
  llm::RetryPolicy retry;
  if (retries) {
    retry.max_attempts = 4;
    retry.base_backoff_us = 50;
    retry.max_backoff_us = 400;
  }
  return std::make_shared<llm::ModelClient>(model, workers,
                                            /*transcript_capacity=*/0,
                                            llm::BatcherConfig{}, retry);
}

pipeline::ValidationPipeline make_pipeline(
    std::shared_ptr<llm::ModelClient> client, std::size_t workers) {
  judge::JudgeCacheConfig cache;
  cache.enabled = false;  // every file must face the faulty model
  auto judge = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect, cache);
  pipeline::PipelineConfig config;
  config.mode = pipeline::PipelineMode::kRecordAll;
  config.compile_workers = workers;
  config.execute_workers = workers;
  config.judge_workers = workers;
  config.judge_batch_size = 4;  // multi-prompt passes exercise splitting
  return pipeline::ValidationPipeline(
      toolchain::CompilerDriver(toolchain::nvc_persona()),
      toolchain::Executor(), judge, config);
}

void BM_PipelineFaults(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  const bool retries = state.range(1) != 0;
  const auto files = make_batch(120, 3);
  const auto pipe = make_pipeline(make_client(rate, retries, 2), 2);

  std::size_t judged = 0;
  std::size_t errors = 0;
  std::uint64_t retries_spent = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t shed = 0;
  std::uint64_t breaker_opens = 0;
  double wall_seconds = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    const auto result = pipe.run(files);
    wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    for (const auto& record : result.records) judged += record.judged;
    errors += result.judge_errors;
    retries_spent += result.judge_retries;
    timeouts += result.judge_timeouts;
    shed += result.judge_shed;
    breaker_opens += result.breaker_opens;
    benchmark::DoNotOptimize(result.records.data());
  }
  const auto iterations = static_cast<double>(state.iterations());
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * files.size()));
  // Goodput: files that came out successfully judged, per wall second —
  // the number fault injection actually degrades (failed files consume
  // pipeline time but produce nothing).
  state.counters["goodput_files_per_s"] =
      wall_seconds > 0.0 ? static_cast<double>(judged) / wall_seconds : 0.0;
  state.counters["success_rate"] =
      static_cast<double>(judged) /
      (iterations * static_cast<double>(files.size()));
  state.counters["judge_errors_per_run"] =
      static_cast<double>(errors) / iterations;
  state.counters["judge_retries_per_run"] =
      static_cast<double>(retries_spent) / iterations;
  state.counters["judge_timeouts_per_run"] =
      static_cast<double>(timeouts) / iterations;
  state.counters["judge_shed_per_run"] =
      static_cast<double>(shed) / iterations;
  state.counters["breaker_opens_per_run"] =
      static_cast<double>(breaker_opens) / iterations;
}
BENCHMARK(BM_PipelineFaults)
    ->ArgsProduct({{5, 20}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"fault_pct", "retries"});

/// p99 added latency: the same prompt stream timed against a fault-free
/// client and a faulted one (identical retry policy), per-prompt deltas
/// sorted, 99th percentile reported. Run outside the pipeline so queueing
/// effects don't pollute the per-request tail.
void BM_ClientAddedLatency(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 100.0;
  constexpr std::size_t kPrompts = 200;
  const auto files = make_batch(kPrompts, 3);

  std::vector<std::string> prompts;
  prompts.reserve(files.size());
  for (const auto& file : files) {
    prompts.push_back(judge::direct_analysis_prompt(file));
  }

  double p99_us = 0.0;
  double served = 0.0;
  for (auto _ : state) {
    auto clean = make_client(0.0, /*retries=*/true, 1);
    auto faulted = make_client(rate, /*retries=*/true, 1);
    std::vector<double> added;
    added.reserve(prompts.size());
    for (const auto& prompt : prompts) {
      const auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(clean->complete(prompt).text.data());
      const auto t1 = std::chrono::steady_clock::now();
      double faulted_us = 0.0;
      bool ok = true;
      const auto t2 = std::chrono::steady_clock::now();
      try {
        benchmark::DoNotOptimize(faulted->complete(prompt).text.data());
      } catch (const llm::ModelError&) {
        ok = false;  // gave up past the budget: not a latency sample
      }
      const auto t3 = std::chrono::steady_clock::now();
      if (!ok) continue;
      const double clean_us =
          std::chrono::duration<double, std::micro>(t1 - t0).count();
      faulted_us =
          std::chrono::duration<double, std::micro>(t3 - t2).count();
      added.push_back(std::max(0.0, faulted_us - clean_us));
    }
    std::sort(added.begin(), added.end());
    if (!added.empty()) {
      const std::size_t idx =
          std::min(added.size() - 1,
                   static_cast<std::size_t>(
                       static_cast<double>(added.size()) * 0.99));
      p99_us += added[idx];
      served += static_cast<double>(added.size());
    }
  }
  const auto iterations = static_cast<double>(state.iterations());
  state.counters["p99_added_latency_us"] = p99_us / iterations;
  state.counters["served_prompts_per_run"] = served / iterations;
}
BENCHMARK(BM_ClientAddedLatency)
    ->Arg(5)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"fault_pct"});

}  // namespace

BENCHMARK_MAIN();
