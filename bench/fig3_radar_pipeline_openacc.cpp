// Reproduces Figure 3: radar plot of the two validation pipelines'
// per-category accuracy on OpenACC (ASCII rendering; the legend carries
// the exact axis values).
#include <cstdio>

#include "core/llm4vv.hpp"

int main() {
  using namespace llm4vv;
  const auto outcome = core::run_part_two(frontend::Flavor::kOpenACC);
  std::puts("\n== Figure 3: Validation Pipeline Results for OpenACC ==");
  std::fputs(metrics::render_radar(
                 {metrics::radar_axes(outcome.pipeline1_report),
                  metrics::radar_axes(outcome.pipeline2_report)},
                 {"Pipeline 1 (agent-direct)", "Pipeline 2 (agent-indirect)"},
                 metrics::radar_axis_labels(frontend::Flavor::kOpenACC))
                 .c_str(),
             stdout);
  std::puts(
      "Paper shape: the two pipelines nearly coincide, compile-catchable "
      "axes saturate at 100%, and the Test-logic axis collapses (22-30%).");
  return 0;
}
