// Ablation bench for the two calibrated design knobs DESIGN.md §5 calls
// out. Each ablation re-runs a Part Two-style OpenACC experiment with the
// knob moved and prints the rows it governs, demonstrating *which* paper
// numbers each mechanism is responsible for:
//
//   1. the compiler persona's strictness quirk (paper: "inconsistent
//      feature support") — owns the valid-file pipeline loss;
//   2. the issue-4 function-tail share (the two readings of "removed last
//      bracketed section") — owns the OpenACC/OpenMP issue-4 asymmetry.
#include <cstdio>

#include "core/llm4vv.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace {

using namespace llm4vv;

struct RunOutcome {
  metrics::EvalReport pipeline;
};

RunOutcome run(frontend::Flavor flavor, double strictness,
               double fn_tail_share) {
  corpus::GeneratorConfig gen;
  gen.flavor = flavor;
  gen.count = 560;
  gen.seed = 0xAB1A7E;
  const auto suite = corpus::generate_suite(gen);

  probing::ProbingConfig probe;
  probe.issue_counts = {80, 40, 40, 40, 80, 240};
  probe.seed = 0xAB;
  probe.mutation.issue4_function_tail_share = fn_tail_share;
  const auto probed = probing::probe_suite(suite, probe);

  toolchain::CompilerConfig persona = flavor == frontend::Flavor::kOpenACC
                                          ? toolchain::nvc_persona()
                                          : toolchain::clang_persona();
  persona.strictness_reject_rate = strictness;

  auto client = core::make_simulated_client(2);
  auto llmj = std::make_shared<const judge::Llmj>(
      client, llm::PromptStyle::kAgentDirect);
  pipeline::PipelineConfig config;
  config.mode = pipeline::PipelineMode::kRecordAll;
  config.compile_workers = 2;
  config.execute_workers = 2;
  config.judge_workers = 2;
  const pipeline::ValidationPipeline pipe(toolchain::CompilerDriver(persona),
                                          toolchain::Executor(), llmj,
                                          config);

  std::vector<frontend::SourceFile> files;
  for (const auto& pf : probed.files) files.push_back(pf.file);
  const auto result = pipe.run(files);

  std::vector<metrics::JudgmentRecord> judgments;
  for (std::size_t i = 0; i < probed.files.size(); ++i) {
    judgments.push_back(metrics::JudgmentRecord{
        probed.files[i].issue, result.records[i].pipeline_says_valid});
  }
  return RunOutcome{metrics::evaluate(judgments)};
}

}  // namespace

int main() {
  std::puts("\n== Ablation 1: compiler-persona strictness quirk ==");
  std::puts("(calibrated value 0.14; owns the Table IV 'No issue' row)");
  {
    support::TextTable table({"strictness", "valid-file acc", "issue-4 acc",
                              "overall acc", "bias"});
    for (const double strictness : {0.0, 0.07, 0.14, 0.28}) {
      const auto outcome = run(frontend::Flavor::kOpenACC, strictness, 0.15);
      table.add_row({
          support::format_fixed(strictness, 2),
          support::format_percent(outcome.pipeline.per_issue[5].accuracy()),
          support::format_percent(outcome.pipeline.per_issue[4].accuracy()),
          support::format_fixed(outcome.pipeline.overall_accuracy * 100, 1) +
              "%",
          support::format_fixed(outcome.pipeline.bias, 3),
      });
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts(
        "Reading: without the quirk the valid row sits near the judge's "
        "~91%, far above the paper's 79%; the calibrated 0.14 lands it, at "
        "the cost the paper also paid (valid tests lost to the compiler).");
  }

  std::puts("\n== Ablation 2: issue-4 function-tail share (OpenMP) ==");
  std::puts("(OMP default 0.80; owns the Table IV vs Table V issue-4 "
            "asymmetry)");
  {
    support::TextTable table({"fn-tail share", "issue-4 acc", "overall acc"});
    for (const double share : {0.0, 0.25, 0.5, 0.8, 1.0}) {
      const auto outcome = run(frontend::Flavor::kOpenMP, 0.015, share);
      table.add_row({
          support::format_fixed(share, 2),
          support::format_percent(outcome.pipeline.per_issue[4].accuracy()),
          support::format_fixed(outcome.pipeline.overall_accuracy * 100, 1) +
              "%",
      });
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts(
        "Reading: on SOLLVE-structured OpenMP files the share interpolates "
        "between the silent regime (~35-60% caught, judge-only) and the "
        "paper's observed ~92% (the removal takes the test function's "
        "return, so the execute stage sees a garbage exit status). On "
        "single-main OpenACC files the knob is inert — both readings are "
        "silent there, which is exactly why Table IV's issue-4 row stays "
        "at 22-30% however the mutation script is read.");
  }
  return 0;
}
