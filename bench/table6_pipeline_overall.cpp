// Reproduces Table VI: Overall Validation Pipeline Results (accuracy and
// bias of both pipelines on both programming models).
#include <cstdio>

#include "core/llm4vv.hpp"

int main() {
  using namespace llm4vv;
  for (const auto flavor :
       {frontend::Flavor::kOpenACC, frontend::Flavor::kOpenMP}) {
    const auto outcome = core::run_part_two(flavor);
    std::fputs(
        core::render_overall_table2(
            std::string("Table VI (") + frontend::flavor_name(flavor) +
                "): Overall Validation Pipeline Results",
            "Pipeline 1", core::table6_overall(flavor, 1),
            outcome.pipeline1_report,
            "Pipeline 2", core::table6_overall(flavor, 2),
            outcome.pipeline2_report)
            .c_str(),
        stdout);
  }
  return 0;
}
