// Negative-probing microbenchmarks: mutation throughput per issue class
// and full-suite probing, demonstrating that benchmark construction scales
// to suites far larger than the paper's.
#include <benchmark/benchmark.h>

#include "core/llm4vv.hpp"

namespace {

using namespace llm4vv;

corpus::Suite sample_suite(std::size_t count) {
  corpus::GeneratorConfig gen;
  gen.flavor = frontend::Flavor::kOpenACC;
  gen.count = count;
  gen.seed = 31337;
  return corpus::generate_suite(gen);
}

void BM_MutationClass(benchmark::State& state) {
  const auto issue = static_cast<probing::IssueType>(state.range(0));
  const auto suite = sample_suite(32);
  const probing::MutationConfig config;
  support::Rng rng(5);
  std::size_t produced = 0;
  for (auto _ : state) {
    for (const auto& tc : suite.cases) {
      const auto mutated = probing::apply_mutation(
          tc.file.content, tc.file.language, issue, config, rng);
      if (mutated) ++produced;
      benchmark::DoNotOptimize(mutated);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * suite.cases.size()));
  state.counters["applicable_share"] =
      static_cast<double>(produced) /
      static_cast<double>(state.iterations() * suite.cases.size());
}
BENCHMARK(BM_MutationClass)
    ->DenseRange(0, 4, 1)
    ->Unit(benchmark::kMicrosecond)
    ->ArgName("issue");

void BM_ProbeSuite(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const auto suite = sample_suite(size + 64);
  for (auto _ : state) {
    probing::ProbingConfig config;
    const std::size_t share = size / 6;
    config.issue_counts = {share, share, share, share, share, size - 5 * share};
    config.seed = 11;
    const auto probed = probing::probe_suite(suite, config);
    benchmark::DoNotOptimize(probed.files.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * size));
}
BENCHMARK(BM_ProbeSuite)
    ->Arg(120)
    ->Arg(600)
    ->Unit(benchmark::kMillisecond);

void BM_GenerateSuite(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    corpus::GeneratorConfig gen;
    gen.flavor = frontend::Flavor::kOpenMP;
    gen.count = count;
    gen.seed = 2;
    const auto suite = corpus::generate_suite(gen);
    benchmark::DoNotOptimize(suite.cases.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * count));
}
BENCHMARK(BM_GenerateSuite)
    ->Arg(64)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
