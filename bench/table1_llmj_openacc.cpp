// Reproduces Table I: LLMJ Negative Probing Results for OpenACC.
//
// Part One of the paper: the non-agent judge (direct-analysis prompt,
// Listing 3) evaluates the probed OpenACC suite (1335 files with the
// paper's per-issue counts; C/C++ plus a small Fortran share).
#include <cstdio>

#include "core/llm4vv.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace llm4vv;
  const support::CliArgs args(argc, argv);
  core::ExperimentOptions options;
  options.corpus_seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<std::int64_t>(options.corpus_seed)));

  const auto outcome =
      core::run_part_one(frontend::Flavor::kOpenACC, options);
  std::fputs(core::render_issue_table(
                 "Table I: LLMJ Negative Probing Results for OpenACC",
                 frontend::Flavor::kOpenACC, core::table1_llmj_acc(),
                 outcome.report)
                 .c_str(),
             stdout);
  std::printf(
      "judge calls: %llu, prompt tokens: %llu, completion tokens: %llu, "
      "simulated GPU time: %.1f s\n",
      static_cast<unsigned long long>(outcome.llm_stats.requests),
      static_cast<unsigned long long>(outcome.llm_stats.prompt_tokens),
      static_cast<unsigned long long>(outcome.llm_stats.completion_tokens),
      outcome.llm_stats.gpu_seconds);
  return 0;
}
